#include "service/plan_cache.h"

#include <cstring>

#include "obs/metrics.h"
#include "obs/obs.h"

namespace gnsslna::service {

namespace {

void set_residency_gauge(std::size_t idle) {
  if (!obs::compiled_in() || !obs::enabled()) return;
  static const obs::Gauge g("service.plan_cache.idle");
  g.set(static_cast<std::int64_t>(idle));
}

/// FNV-1a over raw byte images: doubles hash by bit pattern, so any value
/// change — however small — changes the revision, and equal values always
/// hash equally (there are no NaNs or signed zeros in a validated config).
class Fnv1a {
 public:
  void add_bytes(const void* data, std::size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001B3ULL;
    }
  }
  void add(double v) { add_bytes(&v, sizeof v); }
  void add(bool v) {
    const unsigned char b = v ? 1 : 0;
    add_bytes(&b, 1);
  }
  void add(std::uint64_t v) { add_bytes(&v, sizeof v); }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ULL;
};

}  // namespace

std::uint64_t topology_revision(const amplifier::AmplifierConfig& config,
                                const std::vector<double>& band_hz) {
  amplifier::AmplifierConfig resolved = config;
  resolved.resolve();  // w50 synthesis: unresolved and resolved copies of
                       // the same board must map to one revision

  Fnv1a h;
  const microstrip::Substrate& sub = resolved.substrate;
  h.add(sub.epsilon_r);
  h.add(sub.height_m);
  h.add(sub.copper_thickness_m);
  h.add(sub.tan_delta);
  h.add(sub.resistivity_ohm_m);
  h.add(sub.roughness_rms_m);

  h.add(resolved.vdd);
  h.add(resolved.w50_m);
  h.add(resolved.w_bias_m);
  h.add(resolved.l_bias_m);
  h.add(resolved.c_dec_f);
  h.add(resolved.c_gate_dec_f);
  h.add(resolved.r_gate_bias);
  h.add(static_cast<std::uint64_t>(resolved.package));
  h.add(resolved.dispersive_passives);
  h.add(resolved.model_tee);
  h.add(resolved.t_ambient_k);
  h.add(resolved.use_eval_plan);
  h.add(resolved.use_batched_plan);

  h.add(static_cast<std::uint64_t>(band_hz.size()));
  for (const double f : band_hz) h.add(f);
  return h.value();
}

PlanCache::Lease PlanCache::acquire(std::uint64_t revision,
                                    const device::Phemt& device,
                                    const amplifier::AmplifierConfig& config,
                                    const std::vector<double>& band_hz) {
  GNSSLNA_OBS_SPAN("service.plan_cache.acquire");
  amplifier::BandEvaluator* evaluator = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = idle_.find(revision);
    if (it != idle_.end() && !it->second.empty()) {
      evaluator = it->second.back().release();
      it->second.pop_back();
      --idle_total_;
    }
    set_residency_gauge(idle_total_);
  }
  if (evaluator != nullptr) {
    GNSSLNA_OBS_COUNT("service.plan_cache.hits");
  } else {
    // Build outside the lock: plan construction is the expensive part and
    // concurrent misses on different revisions must not serialize.
    GNSSLNA_OBS_COUNT("service.plan_cache.misses");
    evaluator = new amplifier::BandEvaluator(device, config, band_hz);
  }
  return Lease(evaluator, [this, revision](amplifier::BandEvaluator* e) {
    release(revision, e);
  });
}

void PlanCache::release(std::uint64_t revision,
                        amplifier::BandEvaluator* evaluator) {
  std::unique_ptr<amplifier::BandEvaluator> owned(evaluator);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::unique_ptr<amplifier::BandEvaluator>>& pool =
        idle_[revision];
    if (pool.size() < max_idle_per_revision_) {
      pool.push_back(std::move(owned));
      ++idle_total_;
      set_residency_gauge(idle_total_);
      GNSSLNA_OBS_COUNT("service.plan_cache.returns");
      return;
    }
  }
  // Pool full: drop the evaluator (outside the lock — destruction frees
  // sizeable workspaces).
  GNSSLNA_OBS_COUNT("service.plan_cache.evictions");
}

std::size_t PlanCache::idle_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [revision, pool] : idle_) n += pool.size();
  return n;
}

void PlanCache::clear() {
  std::unordered_map<std::uint64_t,
                     std::vector<std::unique_ptr<amplifier::BandEvaluator>>>
      dropped;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    dropped.swap(idle_);
    idle_total_ = 0;
    set_residency_gauge(0);
  }
}

PlanCache& PlanCache::process_wide() {
  static PlanCache cache;
  return cache;
}

}  // namespace gnsslna::service
