#include "service/scheduler.h"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "obs/obs.h"

namespace gnsslna::service {

namespace {

/// Log2 bucket of a microsecond latency: bucket b holds [2^b, 2^(b+1)).
unsigned latency_bucket(std::uint64_t us) {
  unsigned b = 0;
  while (us > 1 && b < 31) {
    us >>= 1;
    ++b;
  }
  return b;
}

void count_latency(std::uint64_t us) {
#if defined(GNSSLNA_OBS_ENABLED)
  static const std::vector<obs::Counter> buckets = [] {
    std::vector<obs::Counter> v;
    v.reserve(32);
    for (int i = 0; i < 32; ++i) {
      char name[32];
      std::snprintf(name, sizeof name, "service.latency.b%02d", i);
      v.emplace_back(name);
    }
    return v;
  }();
  buckets[latency_bucket(us)].add(1);
#else
  (void)us;
#endif
}

}  // namespace

const JobOutcome& Scheduler::Ticket::wait() const {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return done_; });
  return outcome_;
}

bool Scheduler::Ticket::finished() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return done_;
}

Scheduler::Scheduler(SchedulerOptions options, PlanCache* plans)
    : workers_(numeric::resolve_threads(options.workers)),
      options_(options),
      plans_(plans) {
  // A dedicated pool: worker loops occupy their threads for the server's
  // lifetime, which would wedge the process-wide shared() pool.
  pool_ = std::make_unique<numeric::ThreadPool>(workers_ - 1);
  engine_ = std::thread([this] {
    // n == workers_ hands exactly one worker_loop to each pool thread
    // plus this engine thread (chunking degenerates to one index per
    // grab), giving workers_ concurrent loops.
    pool_->parallel_for(workers_, [this](std::size_t) { worker_loop(); },
                        workers_);
  });
}

Scheduler::~Scheduler() { shutdown(); }

Scheduler::TicketPtr Scheduler::submit(const std::string& client,
                                       std::string type, Json params,
                                       double timeout_s,
                                       obs::TraceSink progress,
                                       CompletionFn on_complete) {
  GNSSLNA_OBS_COUNT("service.submitted");
  auto ticket = std::make_shared<Ticket>();
  ticket->client_ = client;
  ticket->type_ = std::move(type);
  ticket->params_ = std::move(params);
  ticket->progress_ = std::move(progress);
  ticket->on_complete_ = std::move(on_complete);
  if (timeout_s > 0.0) {
    ticket->has_deadline_ = true;
    ticket->deadline_ =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout_s));
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return nullptr;
    std::deque<TicketPtr>& queue = queues_[client];
    if (total_queued_ >= options_.queue_capacity ||
        queue.size() >= options_.max_queued_per_client) {
      GNSSLNA_OBS_COUNT("service.rejected");
      if (queue.empty()) queues_.erase(client);
      return nullptr;
    }
    ticket->id_ = next_id_++;
    if (queue.empty()) round_robin_.push_back(client);
    queue.push_back(ticket);
    ++total_queued_;
  }
  work_cv_.notify_one();
  return ticket;
}

std::size_t Scheduler::queued() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_queued_;
}

Scheduler::TicketPtr Scheduler::next_job() {
  std::unique_lock<std::mutex> lock(mutex_);
  work_cv_.wait(lock, [this] { return stopping_ || !round_robin_.empty(); });
  if (round_robin_.empty()) return nullptr;  // stopping, queue drained
  // Round-robin over clients: take the head client's oldest job, then
  // rotate the client to the back if it still has work.
  const std::string client = std::move(round_robin_.front());
  round_robin_.pop_front();
  std::deque<TicketPtr>& queue = queues_[client];
  TicketPtr ticket = std::move(queue.front());
  queue.pop_front();
  --total_queued_;
  if (queue.empty()) {
    queues_.erase(client);
  } else {
    round_robin_.push_back(client);
  }
  return ticket;
}

void Scheduler::worker_loop() {
  while (TicketPtr ticket = next_job()) run_one(*ticket);
}

void Scheduler::finish(Ticket& t, JobOutcome outcome) {
  {
    const std::lock_guard<std::mutex> lock(t.mutex_);
    t.outcome_ = std::move(outcome);
    t.done_ = true;
  }
  t.done_cv_.notify_all();
  if (t.on_complete_) t.on_complete_(t);
}

void Scheduler::run_one(Ticket& t) {
  if (t.cancelled_.load(std::memory_order_relaxed)) {
    GNSSLNA_OBS_COUNT("service.cancelled");
    finish(t, JobOutcome{"cancelled", {}, {}, {}});
    return;
  }
  const auto start = std::chrono::steady_clock::now();

  JobContext ctx;
  ctx.plans = plans_;
  ctx.progress = t.progress_;
  ctx.check_cancel = [&t] {
    if (t.cancelled_.load(std::memory_order_relaxed)) throw JobCancelled();
    if (t.has_deadline_ && std::chrono::steady_clock::now() > t.deadline_) {
      throw JobTimeout();
    }
  };

  JobOutcome outcome;
  try {
    outcome.result = run_job(t.type_, t.params_, ctx);
    outcome.status = "ok";
    GNSSLNA_OBS_COUNT("service.completed");
  } catch (const JobCancelled&) {
    outcome.status = "cancelled";
    GNSSLNA_OBS_COUNT("service.cancelled");
  } catch (const JobTimeout&) {
    outcome.status = "timeout";
    GNSSLNA_OBS_COUNT("service.timeouts");
  } catch (const JobError& e) {
    outcome.status = "error";
    outcome.error_code = e.code();
    outcome.error_message = e.what();
    GNSSLNA_OBS_COUNT("service.errors");
  } catch (const std::exception& e) {
    outcome.status = "error";
    outcome.error_code = "internal";
    outcome.error_message = e.what();
    GNSSLNA_OBS_COUNT("service.errors");
  }

  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  count_latency(static_cast<std::uint64_t>(std::max<long long>(us, 0)));
  finish(t, std::move(outcome));
}

void Scheduler::shutdown() {
  std::vector<TicketPtr> orphans;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && queues_.empty() && !engine_.joinable()) return;
    stopping_ = true;
    for (auto& [client, queue] : queues_) {
      for (TicketPtr& t : queue) orphans.push_back(std::move(t));
    }
    queues_.clear();
    round_robin_.clear();
    total_queued_ = 0;
  }
  work_cv_.notify_all();
  for (const TicketPtr& t : orphans) {
    GNSSLNA_OBS_COUNT("service.cancelled");
    finish(*t, JobOutcome{"cancelled", {}, {}, {}});
  }
  if (engine_.joinable()) engine_.join();
}

Json service_stats_json() {
  const std::vector<obs::CounterValue> snapshot = obs::counter_snapshot();
  const auto value_of = [&](const std::string& name) -> std::uint64_t {
    for (const obs::CounterValue& c : snapshot) {
      if (c.name == name) return c.value;
    }
    return 0;
  };

  std::uint64_t buckets[32] = {};
  std::uint64_t total = 0;
  for (int b = 0; b < 32; ++b) {
    char name[32];
    std::snprintf(name, sizeof name, "service.latency.b%02d", b);
    buckets[b] = value_of(name);
    total += buckets[b];
  }
  // Conservative percentile: the upper bound (2^(b+1) us) of the first
  // bucket whose cumulative count reaches the quantile.
  const auto percentile_us = [&](double q) -> double {
    if (total == 0) return 0.0;
    const std::uint64_t want = static_cast<std::uint64_t>(q * total) + 1;
    std::uint64_t cum = 0;
    for (int b = 0; b < 32; ++b) {
      cum += buckets[b];
      if (cum >= want) return static_cast<double>(1ULL << (b + 1));
    }
    return static_cast<double>(1ULL << 32);
  };

  Json out = Json::object();
  out.set("submitted", Json::number(value_of("service.submitted")));
  out.set("rejected", Json::number(value_of("service.rejected")));
  out.set("completed", Json::number(value_of("service.completed")));
  out.set("errors", Json::number(value_of("service.errors")));
  out.set("cancelled", Json::number(value_of("service.cancelled")));
  out.set("timeouts", Json::number(value_of("service.timeouts")));
  out.set("plan_cache_hits", Json::number(value_of("service.plan_cache.hits")));
  out.set("plan_cache_misses",
          Json::number(value_of("service.plan_cache.misses")));
  out.set("latency_jobs", Json::number(static_cast<double>(total)));
  out.set("latency_p50_us", Json::number(percentile_us(0.50)));
  out.set("latency_p99_us", Json::number(percentile_us(0.99)));
  return out;
}

}  // namespace gnsslna::service
