#include "service/scheduler.h"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "service/telemetry.h"

namespace gnsslna::service {

namespace {

/// Log2 bucket of a microsecond latency: bucket b holds [2^b, 2^(b+1)).
unsigned latency_bucket(std::uint64_t us) {
  unsigned b = 0;
  while (us > 1 && b < 31) {
    us >>= 1;
    ++b;
  }
  return b;
}

void count_latency(std::uint64_t us) {
#if defined(GNSSLNA_OBS_ENABLED)
  static const std::vector<obs::Counter> buckets = [] {
    std::vector<obs::Counter> v;
    v.reserve(32);
    for (int i = 0; i < 32; ++i) {
      char name[32];
      std::snprintf(name, sizeof name, "service.latency.b%02d", i);
      v.emplace_back(name);
    }
    return v;
  }();
  buckets[latency_bucket(us)].add(1);
#else
  (void)us;
#endif
}

// Every helper below self-gates on telemetry_live(), so GNSSLNA_OBS=OFF
// builds (compiled_in() is constexpr false) never even register the names
// and the metrics/flight ops answer with empty payloads.

const std::vector<double>& latency_bounds_us() {
  static const std::vector<double> kBounds = {
      50,     100,    250,    500,     1000,    2500,    5000,    10000,
      25000,  50000,  100000, 250000,  500000,  1000000, 2500000, 5000000,
      10000000};
  return kBounds;
}

void observe_job_latency(std::uint64_t us) {
  if (!telemetry_live()) return;
  static const obs::Histogram h("service.job_latency_us", latency_bounds_us());
  h.observe(static_cast<double>(us));
}

void observe_queue_wait(std::uint64_t us) {
  if (!telemetry_live()) return;
  static const obs::Histogram h("service.queue_wait_us", latency_bounds_us());
  h.observe(static_cast<double>(us));
}

/// Must be called with the scheduler mutex held (the depth is exact then).
void set_queue_depth_gauge(std::size_t depth) {
  if (!telemetry_live()) return;
  static const obs::Gauge g("service.queue_depth");
  g.set(static_cast<std::int64_t>(depth));
}

void add_in_flight_gauge(std::int64_t d) {
  if (!telemetry_live()) return;
  static const obs::Gauge g("service.jobs_in_flight");
  g.add(d);
}

obs::FlightEvent make_flight_event(obs::FlightType type,
                                   const Scheduler::Ticket& t,
                                   std::uint32_t seq) {
  obs::FlightEvent e;
  e.type = type;
  e.job_id = t.id();
  e.job_seq = seq;
  obs::flight_copy_name(e.job_type, t.type().c_str());
  obs::flight_copy_name(e.client, t.client().c_str());
  return e;
}

// Deterministic per-job flight sequence: 0 = admit, 1 = start (or a
// pre-start cancel), 2 = the terminal event.
constexpr std::uint32_t kFlightSeqAdmit = 0;
constexpr std::uint32_t kFlightSeqStart = 1;
constexpr std::uint32_t kFlightSeqTerminal = 2;

}  // namespace

const JobOutcome& Scheduler::Ticket::wait() const {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return done_; });
  return outcome_;
}

bool Scheduler::Ticket::finished() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return done_;
}

Scheduler::Scheduler(SchedulerOptions options, PlanCache* plans)
    : workers_(numeric::resolve_threads(options.workers)),
      options_(options),
      plans_(plans) {
  // A dedicated pool: worker loops occupy their threads for the server's
  // lifetime, which would wedge the process-wide shared() pool.
  pool_ = std::make_unique<numeric::ThreadPool>(workers_ - 1);
  engine_ = std::thread([this] {
    // n == workers_ hands exactly one worker_loop to each pool thread
    // plus this engine thread (chunking degenerates to one index per
    // grab), giving workers_ concurrent loops.
    pool_->parallel_for(workers_, [this](std::size_t) { worker_loop(); },
                        workers_);
  });
}

Scheduler::~Scheduler() { shutdown(); }

Scheduler::TicketPtr Scheduler::submit(const std::string& client,
                                       std::string type, Json params,
                                       double timeout_s,
                                       obs::TraceSink progress,
                                       CompletionFn on_complete,
                                       bool want_spans) {
  GNSSLNA_OBS_COUNT("service.submitted");
  auto ticket = std::make_shared<Ticket>();
  ticket->client_ = client;
  ticket->type_ = std::move(type);
  ticket->params_ = std::move(params);
  ticket->progress_ = std::move(progress);
  ticket->on_complete_ = std::move(on_complete);
  ticket->want_spans_ = want_spans;
  if (timeout_s > 0.0) {
    ticket->has_deadline_ = true;
    ticket->deadline_ =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout_s));
  }
  ticket->submitted_ = std::chrono::steady_clock::now();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return nullptr;
    std::deque<TicketPtr>& queue = queues_[client];
    if (total_queued_ >= options_.queue_capacity ||
        queue.size() >= options_.max_queued_per_client) {
      GNSSLNA_OBS_COUNT("service.rejected");
      if (telemetry_live()) {
        obs::flight_record(make_flight_event(obs::FlightType::kReject,
                                             *ticket, kFlightSeqAdmit));
      }
      if (queue.empty()) queues_.erase(client);
      return nullptr;
    }
    ticket->id_ = next_id_++;
    if (queue.empty()) round_robin_.push_back(client);
    queue.push_back(ticket);
    ++total_queued_;
    set_queue_depth_gauge(total_queued_);
    // Recorded under the lock so a worker cannot observe (and record the
    // start of) a job whose admission event is not in a ring yet.
    if (telemetry_live()) {
      obs::flight_record(make_flight_event(obs::FlightType::kAdmit, *ticket,
                                           kFlightSeqAdmit));
    }
  }
  work_cv_.notify_one();
  return ticket;
}

std::size_t Scheduler::queued() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_queued_;
}

Scheduler::TicketPtr Scheduler::next_job() {
  std::unique_lock<std::mutex> lock(mutex_);
  work_cv_.wait(lock, [this] { return stopping_ || !round_robin_.empty(); });
  if (round_robin_.empty()) return nullptr;  // stopping, queue drained
  // Round-robin over clients: take the head client's oldest job, then
  // rotate the client to the back if it still has work.
  const std::string client = std::move(round_robin_.front());
  round_robin_.pop_front();
  std::deque<TicketPtr>& queue = queues_[client];
  TicketPtr ticket = std::move(queue.front());
  queue.pop_front();
  --total_queued_;
  set_queue_depth_gauge(total_queued_);
  if (queue.empty()) {
    queues_.erase(client);
  } else {
    round_robin_.push_back(client);
  }
  return ticket;
}

void Scheduler::worker_loop() {
  while (TicketPtr ticket = next_job()) run_one(*ticket);
}

void Scheduler::finish(Ticket& t, JobOutcome outcome) {
  {
    const std::lock_guard<std::mutex> lock(t.mutex_);
    t.outcome_ = std::move(outcome);
    t.done_ = true;
  }
  t.done_cv_.notify_all();
  if (t.on_complete_) t.on_complete_(t);
}

void Scheduler::run_one(Ticket& t) {
  const bool live = telemetry_live();
  if (t.cancelled_.load(std::memory_order_relaxed)) {
    GNSSLNA_OBS_COUNT("service.cancelled");
    if (live) {
      obs::flight_record(
          make_flight_event(obs::FlightType::kCancel, t, kFlightSeqStart));
    }
    JobOutcome cancelled;
    cancelled.status = "cancelled";
    finish(t, std::move(cancelled));
    return;
  }
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t queue_wait_us = static_cast<std::uint64_t>(
      std::max<long long>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              start - t.submitted_)
              .count(),
          0));

  // Trace context: the job's spans (plan-cache leases, optimizer
  // generations, batched solves, the serialize in on_complete_) all land
  // on this thread (jobs run serial inside) and are tagged with this id.
  obs::JobTrace trace(t.id_);
  std::unique_ptr<obs::ScopedJobTrace> scope;
  std::vector<std::uint64_t> counters_before;
  if (live) {
    add_in_flight_gauge(+1);
    scope = std::make_unique<obs::ScopedJobTrace>(&trace);
    static const obs::SpanCategory kQueueWait("service.job.queue_wait");
    obs::job_trace_event(
        kQueueWait, obs::deterministic() ? 0 : queue_wait_us * 1000);
    observe_queue_wait(obs::deterministic() ? 0 : queue_wait_us);
    obs::flight_record(
        make_flight_event(obs::FlightType::kStart, t, kFlightSeqStart));
    counters_before.resize(obs::counter_capacity());
    obs::read_local_counters(counters_before.data(), counters_before.size());
  }

  JobContext ctx;
  ctx.plans = plans_;
  ctx.progress = t.progress_;
  ctx.check_cancel = [&t] {
    if (t.cancelled_.load(std::memory_order_relaxed)) throw JobCancelled();
    if (t.has_deadline_ && std::chrono::steady_clock::now() > t.deadline_) {
      throw JobTimeout();
    }
  };

  JobOutcome outcome;
  obs::FlightType terminal = obs::FlightType::kComplete;
  try {
    GNSSLNA_OBS_SPAN("service.job.run");
    outcome.result = run_job(t.type_, t.params_, ctx);
    outcome.status = "ok";
    GNSSLNA_OBS_COUNT("service.completed");
  } catch (const JobCancelled&) {
    outcome.status = "cancelled";
    terminal = obs::FlightType::kCancel;
    GNSSLNA_OBS_COUNT("service.cancelled");
  } catch (const JobTimeout&) {
    outcome.status = "timeout";
    terminal = obs::FlightType::kDeadlineMiss;
    GNSSLNA_OBS_COUNT("service.timeouts");
  } catch (const JobError& e) {
    outcome.status = "error";
    outcome.error_code = e.code();
    outcome.error_message = e.what();
    terminal = obs::FlightType::kError;
    GNSSLNA_OBS_COUNT("service.errors");
  } catch (const std::exception& e) {
    outcome.status = "error";
    outcome.error_code = "internal";
    outcome.error_message = e.what();
    terminal = obs::FlightType::kError;
    GNSSLNA_OBS_COUNT("service.errors");
  }

  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  const std::uint64_t lat_us =
      live && obs::deterministic()
          ? 0
          : static_cast<std::uint64_t>(std::max<long long>(us, 0));
  count_latency(lat_us);
  observe_job_latency(lat_us);

  if (live) {
    // Terminal flight event: duration plus the exact counter deltas of
    // this job (the worker ran nothing else between the two local reads).
    std::vector<std::uint64_t> after(counters_before.size());
    obs::read_local_counters(after.data(), after.size());
    obs::FlightEvent e = make_flight_event(terminal, t, kFlightSeqTerminal);
    e.duration_us = lat_us;
    for (std::size_t i = 0;
         i < after.size() && e.delta_count < obs::kFlightMaxDeltas; ++i) {
      const std::uint64_t d = after[i] - counters_before[i];
      if (d == 0) continue;
      e.deltas[e.delta_count++] = {static_cast<std::uint32_t>(i), d};
    }
    obs::flight_record(e);

    // The span tree costs a JSON build per job, so only submitters who
    // asked (the wire "spans" flag) pay for it; the trace itself is always
    // recorded while live.
    if (t.want_spans_) {
      outcome.spans = span_tree_json(trace, obs::deterministic());
    }
    if (outcome.status == "error" || outcome.status == "timeout") {
      // A failed or deadline-missed job's reply carries its flight events
      // so the bad request is diagnosable without re-running it.
      outcome.flight = flight_json_for_job(t.id_);
    }
    add_in_flight_gauge(-1);
  }
  // `scope` stays installed through finish() so the serialize span in the
  // server's on_complete_ is attributed to this job (it lands in the
  // global capture/trace, not in outcome.spans, which is already built).
  finish(t, std::move(outcome));
}

void Scheduler::shutdown() {
  std::vector<TicketPtr> orphans;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && queues_.empty() && !engine_.joinable()) return;
    stopping_ = true;
    for (auto& [client, queue] : queues_) {
      for (TicketPtr& t : queue) orphans.push_back(std::move(t));
    }
    queues_.clear();
    round_robin_.clear();
    total_queued_ = 0;
  }
  work_cv_.notify_all();
  for (const TicketPtr& t : orphans) {
    GNSSLNA_OBS_COUNT("service.cancelled");
    if (telemetry_live()) {
      obs::flight_record(
          make_flight_event(obs::FlightType::kCancel, *t, kFlightSeqStart));
    }
    JobOutcome cancelled;
    cancelled.status = "cancelled";
    finish(*t, std::move(cancelled));
  }
  if (engine_.joinable()) engine_.join();
}

Json service_stats_json() {
  const std::vector<obs::CounterValue> snapshot = obs::counter_snapshot();
  const auto value_of = [&](const std::string& name) -> std::uint64_t {
    for (const obs::CounterValue& c : snapshot) {
      if (c.name == name) return c.value;
    }
    return 0;
  };

  std::uint64_t buckets[32] = {};
  std::uint64_t total = 0;
  for (int b = 0; b < 32; ++b) {
    char name[32];
    std::snprintf(name, sizeof name, "service.latency.b%02d", b);
    buckets[b] = value_of(name);
    total += buckets[b];
  }
  const auto percentile_us = [&](double q) {
    return latency_percentile_us(buckets, q);
  };

  Json out = Json::object();
  out.set("submitted", Json::number(value_of("service.submitted")));
  out.set("rejected", Json::number(value_of("service.rejected")));
  out.set("completed", Json::number(value_of("service.completed")));
  out.set("errors", Json::number(value_of("service.errors")));
  out.set("cancelled", Json::number(value_of("service.cancelled")));
  out.set("timeouts", Json::number(value_of("service.timeouts")));
  out.set("plan_cache_hits", Json::number(value_of("service.plan_cache.hits")));
  out.set("plan_cache_misses",
          Json::number(value_of("service.plan_cache.misses")));
  out.set("latency_jobs", Json::number(static_cast<double>(total)));
  out.set("latency_p50_us", Json::number(percentile_us(0.50)));
  out.set("latency_p99_us", Json::number(percentile_us(0.99)));
  out.set("slo", evaluate_slos_json(default_slos()));
  return out;
}

}  // namespace gnsslna::service
