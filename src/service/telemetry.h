// Service-side telemetry exposition: the canonical service::Json views of
// the obs layer (metrics registry, flight recorder, per-job span trees) and
// the declarative SLO evaluation the stats op reports.
//
// This is the dependency-respecting seam: src/obs/ knows nothing about
// service::Json, so the generic snapshots (obs/metrics.h, obs/flight.h,
// obs::JobTrace) are converted here.  Every export has a deterministic
// mode — name-keyed, sorted, wall-clock zeroed, observational metrics
// zeroed/filtered (obs::metric_is_observational) — under which the bytes
// are identical across worker counts for identical completed traffic
// (pinned in tests/test_service.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "service/json.h"

namespace gnsslna::service {

/// True when instrumentation is compiled in AND runtime-enabled — the gate
/// every service-layer recording site uses, so GNSSLNA_OBS=OFF builds
/// never register service metrics and answer the metrics/flight ops with
/// empty payloads.
inline bool telemetry_live() {
  return obs::compiled_in() && obs::enabled();
}

/// {"counters":{...},"gauges":{...},"histograms":{name:{"le":[...],
/// "counts":[...],"sum":s,"count":n}}} — each section name-sorted
/// (snapshot order), values zeroed per the determinism class when
/// deterministic.  Empty sections when obs is off.
Json metrics_to_json(const obs::MetricsSnapshot& snapshot, bool deterministic);
Json metrics_json(bool deterministic);

/// Prometheus text of the current snapshot ("" when obs is off).
std::string metrics_prometheus(bool deterministic);

/// Array of flight events.  Deterministic: sorted by (job, seq), order and
/// duration zeroed, observational counter deltas filtered; otherwise
/// sorted by the global order stamp with real values.
Json flight_to_json(const std::vector<obs::FlightEvent>& events,
                    bool deterministic);
Json flight_json(bool deterministic);
Json flight_json_for_job(std::uint64_t job_id);

/// Aggregated span tree of one job: {"name":"job","count":1,"total_us":t,
/// "children":[...]} with children merged by (parent, span name) in
/// first-open order and counts summed — deterministic shape for a
/// deterministic job body; total_us zeroed when deterministic.
Json span_tree_json(const obs::JobTrace& trace, bool deterministic);

/// Interpolated quantile of the service.latency.bXX log2-µs histogram
/// (bucket b covers [2^b, 2^(b+1)), b = 0 covers [0, 2)).  Midpoint rule:
/// the rank-k sample (k = floor(q·total) + 1) sits at (j - 0.5)/n of its
/// bucket's width, j its 1-based index within the bucket.  Replaces the
/// old upper-bound estimate, which systematically over-reported by up to
/// 2x (pinned in tests/test_service.cpp ServiceStats).
double latency_percentile_us(const std::uint64_t buckets[32], double q);

/// One declarative service-level objective.
struct SloSpec {
  enum class Kind {
    kLatencyQuantile,  ///< quantile of service.job_latency_us <= limit (µs)
    kRejectionRate,    ///< rejected / submitted <= limit
    kErrorRate,        ///< errors / submitted <= limit
  };
  std::string name;
  Kind kind = Kind::kLatencyQuantile;
  double quantile = 0.0;  ///< latency objectives only
  double limit = 0.0;     ///< µs for latency, fraction for rates
};

/// The served objectives: p50/p99 job latency, rejection rate, error rate.
const std::vector<SloSpec>& default_slos();

/// [{"name","kind","quantile","limit","measured","samples","attained"}].
/// An objective with no samples yet is vacuously attained; with obs off
/// every objective is vacuous (empty histograms/counters), documented
/// behaviour for GNSSLNA_OBS=OFF builds.
Json evaluate_slos_json(const std::vector<SloSpec>& slos);

}  // namespace gnsslna::service
