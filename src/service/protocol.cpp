#include "service/protocol.h"

#include <cstdint>
#include <stdexcept>

namespace gnsslna::service {

std::string encode_frame(std::string_view payload, std::size_t max_payload) {
  if (payload.size() > max_payload) {
    throw std::length_error("encode_frame: payload exceeds frame limit");
  }
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  frame.push_back(static_cast<char>((n >> 24) & 0xFF));
  frame.push_back(static_cast<char>((n >> 16) & 0xFF));
  frame.push_back(static_cast<char>((n >> 8) & 0xFF));
  frame.push_back(static_cast<char>(n & 0xFF));
  frame.append(payload);
  return frame;
}

void FrameReader::feed(std::string_view bytes) {
  if (broken_) return;
  buffer_.append(bytes);
}

bool FrameReader::next(std::string* payload) {
  if (broken_ || buffer_.size() < kFrameHeaderBytes) return false;
  const auto b = [&](std::size_t i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(buffer_[i]));
  };
  const std::uint32_t n = (b(0) << 24) | (b(1) << 16) | (b(2) << 8) | b(3);
  if (n > max_payload_) {
    broken_ = true;
    error_ = "oversize frame: " + std::to_string(n) + " > " +
             std::to_string(max_payload_) + " bytes";
    buffer_.clear();
    buffer_.shrink_to_fit();
    return false;
  }
  if (buffer_.size() < kFrameHeaderBytes + n) return false;
  payload->assign(buffer_, kFrameHeaderBytes, n);
  buffer_.erase(0, kFrameHeaderBytes + n);
  return true;
}

}  // namespace gnsslna::service
