#include "service/server.h"

#include <cmath>
#include <utility>

#include "obs/obs.h"
#include "service/telemetry.h"

namespace gnsslna::service {

namespace {

Json error_object(const std::string& code, const std::string& message) {
  Json e = Json::object();
  e.set("code", Json::string(code));
  e.set("message", Json::string(message));
  return e;
}

/// Client-chosen job id: a non-negative integral number.  Returns false
/// (with *id untouched) for anything else.
bool parse_id(const Json& doc, std::uint64_t* id) {
  const Json* v = doc.find("id");
  if (v == nullptr || !v->is_number()) return false;
  const double x = v->as_number();
  if (!(x >= 0.0) || x != std::floor(x) || x > 9.007199254740992e15) {
    return false;
  }
  *id = static_cast<std::uint64_t>(x);
  return true;
}

}  // namespace

Session::Session(Scheduler& scheduler, std::string client_id, SendFn send)
    : scheduler_(scheduler),
      client_id_(std::move(client_id)),
      send_(std::move(send)) {}

bool Session::on_bytes(std::string_view bytes) {
  reader_.feed(bytes);
  std::string payload;
  while (reader_.next(&payload)) handle_frame(payload);
  if (reader_.broken()) {
    // The length framing is poisoned (oversize header): one final
    // well-formed error frame, then the transport must close.
    send_error("oversize_frame", reader_.error());
    return false;
  }
  return true;
}

bool Session::shutdown_requested() const {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  return shutdown_requested_;
}

void Session::drain() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  drained_cv_.wait(lock, [this] { return inflight_.empty(); });
}

void Session::send_doc(const Json& doc) {
  std::string frame;
  try {
    frame = encode_frame(doc.dump());
  } catch (const std::length_error&) {
    // A result payload exceeding the frame cap (should be impossible with
    // the jobs.h admission caps) degrades to an error frame.
    Json fallback = Json::object();
    fallback.set("event", Json::string("error"));
    fallback.set("error",
                 error_object("oversize_result", "result exceeded frame cap"));
    frame = encode_frame(fallback.dump());
  }
  const std::lock_guard<std::mutex> lock(send_mutex_);
  send_(frame);
}

void Session::send_error(const std::string& code, const std::string& message) {
  Json doc = Json::object();
  doc.set("event", Json::string("error"));
  doc.set("error", error_object(code, message));
  send_doc(doc);
}

void Session::send_result(std::uint64_t id, const JobOutcome& outcome,
                          bool include_spans) {
  // Runs on the worker thread while the job's trace context is still
  // installed, so serialization cost lands in the owning job's span tree
  // (global capture only — the reply's own tree is already built).
  GNSSLNA_OBS_SPAN("service.session.serialize");
  Json doc = Json::object();
  doc.set("event", Json::string("result"));
  doc.set("id", Json::number(static_cast<double>(id)));
  doc.set("status", Json::string(outcome.status));
  if (outcome.status == "ok") {
    doc.set("result", outcome.result);
  } else if (!outcome.error_code.empty()) {
    // "error" and "rejected" both carry a machine-readable error object.
    doc.set("error", error_object(outcome.error_code, outcome.error_message));
  }
  if (include_spans && !outcome.spans.is_null()) {
    doc.set("spans", outcome.spans);
  }
  if (!outcome.flight.is_null()) {
    doc.set("flight", outcome.flight);
  }
  send_doc(doc);
}

void Session::handle_frame(const std::string& payload) {
  Json doc;
  std::string parse_error;
  if (!Json::parse(payload, &doc, &parse_error)) {
    send_error("bad_json", parse_error);
    return;
  }
  if (!doc.is_object()) {
    send_error("bad_request", "request must be a JSON object");
    return;
  }
  const std::string op = doc.string_at("op");
  if (op == "submit") {
    handle_submit(doc);
  } else if (op == "cancel") {
    handle_cancel(doc);
  } else if (op == "stats") {
    Json reply = Json::object();
    reply.set("event", Json::string("stats"));
    reply.set("stats", service_stats_json());
    send_doc(reply);
  } else if (op == "ping") {
    Json reply = Json::object();
    reply.set("event", Json::string("pong"));
    send_doc(reply);
  } else if (op == "metrics") {
    const bool det = doc.bool_at("deterministic", obs::deterministic());
    Json reply = Json::object();
    reply.set("event", Json::string("metrics"));
    reply.set("enabled", Json::boolean(telemetry_live()));
    reply.set("prometheus", Json::string(metrics_prometheus(det)));
    reply.set("metrics", metrics_json(det));
    send_doc(reply);
  } else if (op == "flight") {
    const bool det = doc.bool_at("deterministic", obs::deterministic());
    Json reply = Json::object();
    reply.set("event", Json::string("flight"));
    reply.set("enabled", Json::boolean(telemetry_live()));
    reply.set("events", flight_json(det));
    send_doc(reply);
  } else if (op == "list_scenarios") {
    // Pure catalog data; computed once for the process (analyze_scenario
    // is deterministic, so every session sees identical bytes).
    static const Json kScenarios = list_scenarios_json();
    Json reply = Json::object();
    reply.set("event", Json::string("scenarios"));
    reply.set("scenarios", kScenarios);
    send_doc(reply);
  } else if (op == "shutdown") {
    {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      shutdown_requested_ = true;
    }
    Json reply = Json::object();
    reply.set("event", Json::string("shutdown_ack"));
    send_doc(reply);
  } else {
    send_error("bad_request", "unknown op '" + op + "'");
  }
}

void Session::handle_submit(const Json& doc) {
  std::uint64_t id = 0;
  if (!parse_id(doc, &id)) {
    send_error("bad_request", "submit requires a non-negative integer id");
    return;
  }
  const std::string type = doc.string_at("type");
  if (!is_job_type(type)) {
    JobOutcome outcome;
    outcome.status = "error";
    outcome.error_code = "unknown_type";
    outcome.error_message = "unknown job type '" + type + "'";
    send_result(id, outcome);
    return;
  }
  const Json* params_member = doc.find("params");
  Json params = params_member != nullptr ? *params_member : Json();
  const double timeout_s = [&] {
    const Json* v = doc.find("timeout_s");
    return v != nullptr && v->is_number() ? v->as_number() : 0.0;
  }();
  const bool want_progress = doc.bool_at("progress", false);
  const bool want_spans = doc.bool_at("spans", false);

  bool duplicate = false;
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    if (inflight_.count(id) != 0) {
      duplicate = true;
    } else {
      inflight_.emplace(id, nullptr);
    }
  }
  if (duplicate) {
    // No result frame here — the in-flight job's frame still has to
    // arrive unambiguously under this id.
    send_error("duplicate_id", "job id already in flight; pick a fresh id");
    return;
  }

  obs::TraceSink progress;
  if (want_progress) {
    progress = [this, id](const obs::TraceRecord& r) {
      Json doc2 = Json::object();
      doc2.set("event", Json::string("progress"));
      doc2.set("id", Json::number(static_cast<double>(id)));
      doc2.set("phase", Json::string(r.phase));
      doc2.set("iteration", Json::number(static_cast<double>(r.iteration)));
      doc2.set("evaluations",
               Json::number(static_cast<double>(r.evaluations)));
      doc2.set("best_value", Json::number(r.best_value));
      send_doc(doc2);
    };
  }

  auto on_complete = [this, id, want_spans](Scheduler::Ticket& t) {
    send_result(id, t.wait(), want_spans);
    {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      auto it = inflight_.find(id);
      if (it != inflight_.end() && it->second != nullptr) {
        inflight_.erase(it);
      } else {
        // Completion outran Scheduler::submit's return; let the submit
        // path clear the entry so it never re-registers a finished job.
        finished_early_.insert(id);
      }
    }
    drained_cv_.notify_all();
  };

  const Scheduler::TicketPtr ticket =
      scheduler_.submit(client_id_, type, std::move(params), timeout_s,
                        std::move(progress), std::move(on_complete),
                        want_spans);
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    if (ticket == nullptr || finished_early_.erase(id) != 0) {
      inflight_.erase(id);
    } else {
      inflight_[id] = ticket;
    }
  }
  if (ticket == nullptr) {
    drained_cv_.notify_all();
    JobOutcome outcome;
    outcome.status = "rejected";
    outcome.error_code = "queue_full";
    outcome.error_message =
        "scheduler queue is full (global or per-client bound); retry";
    send_result(id, outcome);
  } else {
    drained_cv_.notify_all();
  }
}

void Session::handle_cancel(const Json& doc) {
  std::uint64_t id = 0;
  if (!parse_id(doc, &id)) {
    send_error("bad_request", "cancel requires a non-negative integer id");
    return;
  }
  bool known = false;
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    auto it = inflight_.find(id);
    if (it != inflight_.end() && it->second != nullptr) {
      it->second->cancel();
      known = true;
    }
  }
  Json reply = Json::object();
  reply.set("event", Json::string("cancel_ack"));
  reply.set("id", Json::number(static_cast<double>(id)));
  reply.set("known", Json::boolean(known));
  send_doc(reply);
}

}  // namespace gnsslna::service
