// Transport-agnostic protocol session: one per connected client.
//
// Wire protocol (every frame is protocol.h length-prefixed JSON):
//
//   requests
//     {"op":"submit","id":7,"type":"evaluate","params":{...},
//      "timeout_s":10,"progress":false,"spans":false}
//     {"op":"cancel","id":7}
//     {"op":"stats"}   {"op":"ping"}   {"op":"shutdown"}
//     {"op":"metrics","deterministic":false}   (observability exposition)
//     {"op":"flight","deterministic":false}    (flight-recorder dump)
//
//   replies
//     {"event":"result","id":7,"status":"ok","result":{...}}
//     {"event":"result","id":7,"status":"rejected",
//      "error":{"code":"queue_full",...}}        (backpressure; retry)
//     {"event":"result","id":7,"status":"error"|"cancelled"|"timeout",...,
//      "flight":[...]}     (failed / deadline-missed jobs carry their
//                           flight-recorder events for post-hoc diagnosis)
//     {"event":"progress","id":7,"phase":"de","iteration":3,...}
//     {"event":"stats","stats":{...}}  {"event":"pong"}
//     {"event":"metrics","enabled":true,"prometheus":"...","metrics":{...}}
//     {"event":"flight","enabled":true,"events":[...]}
//     {"event":"shutdown_ack"}
//     {"event":"error","error":{"code":"bad_json"|"bad_request"|
//      "oversize_frame",...}}                    (protocol-level failure)
//
// `id` is chosen by the client and scopes cancel/progress/result; reusing
// an id while it is in flight is rejected.  Malformed JSON and bad
// requests get an error frame and the stream continues; an oversize frame
// poisons the length framing, so the session sends a final error frame
// and asks the transport to close (on_bytes returns false).
//
// Observability ops: "metrics" answers with the registry snapshot in both
// exposition formats (Prometheus text + canonical Json), "flight" with the
// flight-recorder event dump.  Both always answer — in GNSSLNA_OBS=OFF
// builds (or with obs disabled at runtime) `enabled` is false and the
// payloads are empty, never an error.  `"deterministic":true` requests the
// byte-stable form (observational metrics zeroed, wall-clock fields
// zeroed, name-keyed ordering); it defaults to obs::deterministic().
// Submitting with `"spans":true` adds the job's aggregated span tree as a
// `spans` member of its result frame.
//
// Determinism: a result frame's `result` member contains only the job's
// deterministic result document (json.h dump rules) — no timing, no server
// state — so it is byte-identical for the same (type, params, seed) no
// matter the traffic (pinned by tests/test_service.cpp).  The optional
// `spans`/`flight` siblings are observability data, never part of
// `result`.
//
// Threading: on_bytes runs on the transport's read thread; result and
// progress frames are sent from scheduler worker threads.  All sends are
// serialized on an internal mutex, so the SendFn only needs to write.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "service/protocol.h"
#include "service/scheduler.h"

namespace gnsslna::service {

class Session {
 public:
  /// Writes one already-framed reply to the transport.  Called under the
  /// session's send mutex — never concurrently.
  using SendFn = std::function<void(const std::string& frame)>;

  Session(Scheduler& scheduler, std::string client_id, SendFn send);

  /// Feeds transport bytes; parses and dispatches every complete frame.
  /// Returns false when the stream is unrecoverably broken (oversize
  /// frame): the final error frame has been sent and the transport
  /// should drain() and close.
  bool on_bytes(std::string_view bytes);

  /// True after the client sent {"op":"shutdown"}.
  bool shutdown_requested() const;

  /// Blocks until every in-flight job of this session has completed and
  /// its result frame has been sent (call before closing the transport).
  void drain();

 private:
  void handle_frame(const std::string& payload);
  void handle_submit(const Json& doc);
  void handle_cancel(const Json& doc);
  void send_doc(const Json& doc);
  void send_error(const std::string& code, const std::string& message);
  void send_result(std::uint64_t id, const JobOutcome& outcome,
                   bool include_spans = false);

  Scheduler& scheduler_;
  std::string client_id_;
  SendFn send_;
  FrameReader reader_;

  std::mutex send_mutex_;

  mutable std::mutex state_mutex_;
  std::condition_variable drained_cv_;
  /// In-flight jobs by client id; the ticket is null for the short window
  /// between queueing the submit and Scheduler::submit returning.
  std::unordered_map<std::uint64_t, Scheduler::TicketPtr> inflight_;
  /// Jobs whose completion raced ahead of Scheduler::submit returning.
  std::unordered_set<std::uint64_t> finished_early_;
  bool shutdown_requested_ = false;
};

}  // namespace gnsslna::service
