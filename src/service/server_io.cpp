#include "service/server_io.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace gnsslna::service {

namespace {

/// write() until done; false on error (EPIPE when the peer vanished —
/// the session keeps running, its sends just go nowhere).
bool write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

int serve_stream(Scheduler& scheduler, int in_fd, int out_fd,
                 const std::string& client_name) {
  Session session(scheduler, client_name, [out_fd](const std::string& frame) {
    write_all(out_fd, frame.data(), frame.size());
  });

  char buf[64 * 1024];
  bool stream_ok = true;
  while (stream_ok && !session.shutdown_requested()) {
    const ssize_t n = ::read(in_fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // EOF
    stream_ok = session.on_bytes({buf, static_cast<std::size_t>(n)});
  }
  session.drain();
  return session.shutdown_requested() ? 1 : 0;
}

SocketServer::SocketServer(Scheduler& scheduler, std::string socket_path)
    : scheduler_(scheduler), path_(std::move(socket_path)) {}

SocketServer::~SocketServer() { stop(); }

bool SocketServer::start(std::string* error) {
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof addr.sun_path) {
    if (error != nullptr) *error = "socket path too long: " + path_;
    return false;
  }
  std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  ::unlink(path_.c_str());  // stale socket from a dead server
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void SocketServer::accept_loop() {
  std::uint64_t counter = 0;
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by stop()
    }
    const std::string name = "sock:" + std::to_string(counter++);
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd, name] {
      serve_stream(scheduler_, fd, fd, name);
      ::close(fd);
    });
  }
}

void SocketServer::stop() {
  if (stopping_.exchange(true)) {
    // Second caller (destructor after explicit stop): nothing left.
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    // Wake connection read loops blocked in read(); the serving threads
    // close the fds themselves after draining.
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
    conn_fds_.clear();
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) t.join();
  ::unlink(path_.c_str());
}

bool StreamClient::send(const Json& doc) { return send_payload(doc.dump()); }

bool StreamClient::send_payload(const std::string& payload) {
  std::string frame;
  try {
    frame = encode_frame(payload);
  } catch (const std::length_error&) {
    return false;
  }
  return send_raw(frame);
}

bool StreamClient::send_raw(const std::string& bytes) {
  return write_all(out_fd_, bytes.data(), bytes.size());
}

bool StreamClient::next(Json* doc, std::string* raw) {
  std::string payload;
  for (;;) {
    if (reader_.next(&payload)) {
      if (raw != nullptr) *raw = payload;
      Json parsed;
      if (Json::parse(payload, &parsed)) {
        *doc = std::move(parsed);
        return true;
      }
      continue;  // tolerate unparseable frames (shouldn't happen)
    }
    if (reader_.broken()) return false;
    char buf[64 * 1024];
    const ssize_t n = ::read(in_fd_, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF
    reader_.feed({buf, static_cast<std::size_t>(n)});
  }
}

int StreamClient::connect_unix(const std::string& path) {
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) return -1;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace gnsslna::service
