// POSIX transports for the job server, plus a small blocking client.
//
//   * Worker mode — serve_stream() speaks the protocol over a pair of
//     file descriptors (stdin/stdout of a forked worker, or a pipe pair
//     inside a test).  One read loop, replies from worker threads.
//   * Socket mode — SocketServer listens on an AF_UNIX socket and runs
//     one serve_stream per accepted connection.
//
// Both transports share the Session logic; they add only fd plumbing.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/server.h"

namespace gnsslna::service {

/// Serves one client over (in_fd, out_fd) until EOF, a poisoned stream,
/// or a shutdown op; drains in-flight jobs before returning.  Returns 1
/// when the client requested shutdown, 0 otherwise.  `client_name` is the
/// scheduler's fair-share identity for this stream.
int serve_stream(Scheduler& scheduler, int in_fd, int out_fd,
                 const std::string& client_name);

/// AF_UNIX job server: accept loop on `socket_path`, one connection
/// thread per client.  stop() (or destruction) closes the listener and
/// every live connection, then joins.
class SocketServer {
 public:
  SocketServer(Scheduler& scheduler, std::string socket_path);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds + listens + starts the accept thread.  False (with *error set)
  /// when the socket cannot be created.
  bool start(std::string* error = nullptr);
  void stop();

  const std::string& path() const { return path_; }

 private:
  void accept_loop();

  Scheduler& scheduler_;
  std::string path_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex conn_mutex_;
  std::vector<int> conn_fds_;            ///< live connection fds (for stop)
  std::vector<std::thread> conn_threads_;
  std::uint64_t next_client_ = 0;
};

/// Minimal blocking protocol client over a connected fd pair: frames
/// outgoing documents, reassembles incoming ones.  Used by load_gen, the
/// examples, and the pipe-transport tests.  Not thread-safe.
class StreamClient {
 public:
  /// `in_fd` carries server->client bytes, `out_fd` client->server.
  StreamClient(int in_fd, int out_fd) : in_fd_(in_fd), out_fd_(out_fd) {}

  /// Sends one document (false on write failure).
  bool send(const Json& doc);
  /// Sends pre-encoded payload bytes as one frame (protocol tests).
  bool send_payload(const std::string& payload);
  /// Sends raw bytes verbatim — no framing (fuzz / malformed-frame tests).
  bool send_raw(const std::string& bytes);

  /// Reads frames until one parses; returns it.  False on EOF or a
  /// poisoned stream.  `raw` (optional) receives the frame's exact
  /// payload bytes — what the bit-identity tests compare.
  bool next(Json* doc, std::string* raw = nullptr);

  /// Connects to an AF_UNIX socket; -1 on failure.
  static int connect_unix(const std::string& path);

 private:
  int in_fd_;
  int out_fd_;
  FrameReader reader_;
};

}  // namespace gnsslna::service
