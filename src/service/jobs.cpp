#include "service/jobs.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <optional>
#include <vector>

#include "amplifier/design_flow.h"
#include "amplifier/yield.h"
#include "device/models.h"
#include "extract/three_step.h"
#include "mission/objective.h"
#include "numeric/rng.h"
#include "obs/obs.h"
#include "rf/sweep.h"

namespace gnsslna::service {

namespace {

using amplifier::AmplifierConfig;
using amplifier::DesignGoals;
using amplifier::DesignVector;

[[noreturn]] void bad_param(const std::string& what) {
  throw JobError("bad_params", what);
}

/// Wire field names of the design vector, in to_vector() order (the
/// human-readable DesignVector::names() carry units and spaces, which make
/// poor JSON keys).
const std::vector<std::string>& design_field_names() {
  static const std::vector<std::string> kNames = {
      "vgs",      "vds",        "l_in_m",   "l_in2_m",
      "l_shunt_h", "c_mid_f",   "l_out_m",  "c_out_sh_f",
      "l_out2_m", "l_sdeg_h",   "c_in_f",   "r_fb_ohm"};
  return kNames;
}

double num_in(const Json& obj, const char* key, double fallback, double lo,
              double hi) {
  const Json* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number() || !std::isfinite(v->as_number())) {
    bad_param(std::string(key) + " must be a finite number");
  }
  const double x = v->as_number();
  if (!(x >= lo && x <= hi)) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "%s = %g outside the accepted range [%g, %g]",
                  key, x, lo, hi);
    bad_param(buf);
  }
  return x;
}

bool bool_in(const Json& obj, const char* key, bool fallback) {
  const Json* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_bool()) bad_param(std::string(key) + " must be a boolean");
  return v->as_bool();
}

/// Non-negative integer parameter (seeds, sample counts, budgets).
std::uint64_t uint_in(const Json& obj, const char* key, std::uint64_t fallback,
                      std::uint64_t lo, std::uint64_t hi) {
  const Json* v = obj.find(key);
  if (v == nullptr) return fallback;
  const double x = v->is_number() ? v->as_number() : -1.0;
  if (!(x >= 0.0) || x != std::floor(x) || x > 9.007199254740992e15) {
    bad_param(std::string(key) + " must be a non-negative integer");
  }
  const std::uint64_t n = static_cast<std::uint64_t>(x);
  if (n < lo || n > hi) {
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "%s = %llu outside the accepted range [%llu, %llu]", key,
                  static_cast<unsigned long long>(n),
                  static_cast<unsigned long long>(lo),
                  static_cast<unsigned long long>(hi));
    bad_param(buf);
  }
  return n;
}

AmplifierConfig parse_config(const Json& params) {
  AmplifierConfig config;
  const Json* c = params.find("config");
  if (c == nullptr) return config;
  if (!c->is_object()) bad_param("config must be an object");
  const std::string substrate = c->string_at("substrate", "fr4");
  if (substrate == "fr4") {
    config.substrate = microstrip::Substrate::fr4();
  } else if (substrate == "ro4350b") {
    config.substrate = microstrip::Substrate::ro4350b();
  } else {
    bad_param("unknown substrate '" + substrate + "' (fr4 | ro4350b)");
  }
  config.vdd = num_in(*c, "vdd", config.vdd, 1.0, 12.0);
  config.t_ambient_k = num_in(*c, "t_ambient_k", config.t_ambient_k, 100.0,
                              500.0);
  config.model_tee = bool_in(*c, "model_tee", config.model_tee);
  config.dispersive_passives =
      bool_in(*c, "dispersive_passives", config.dispersive_passives);
  return config;
}

std::vector<double> parse_band(const Json& params) {
  const Json* b = params.find("band_hz");
  if (b == nullptr) return amplifier::LnaDesign::default_band();
  if (!b->is_array() || b->size() < 2 || b->size() > 64) {
    bad_param("band_hz must be an array of 2..64 frequencies");
  }
  std::vector<double> band;
  band.reserve(b->size());
  for (std::size_t i = 0; i < b->size(); ++i) {
    const Json& v = b->at(i);
    const double f = v.is_number() ? v.as_number() : -1.0;
    if (!(f >= 0.2e9 && f <= 20e9)) {
      bad_param("band_hz entries must be numbers in [0.2e9, 20e9]");
    }
    if (!band.empty() && f <= band.back()) {
      bad_param("band_hz must be strictly ascending");
    }
    band.push_back(f);
  }
  return band;
}

DesignVector parse_design(const Json& params) {
  DesignVector d;
  const Json* obj = params.find("design");
  if (obj == nullptr) return d;
  if (!obj->is_object()) bad_param("design must be an object");
  const std::vector<std::string>& names = design_field_names();
  std::vector<double> x = d.to_vector();
  const optimize::Bounds box = DesignVector::bounds();
  for (std::size_t i = 0; i < obj->size(); ++i) {
    const std::string& key = obj->key(i);
    const auto it = std::find(names.begin(), names.end(), key);
    if (it == names.end()) bad_param("unknown design field '" + key + "'");
    const std::size_t slot = static_cast<std::size_t>(it - names.begin());
    const Json& v = obj->at(i);
    if (!v.is_number() || !std::isfinite(v.as_number())) {
      bad_param("design." + key + " must be a finite number");
    }
    const double value = v.as_number();
    if (value < box.lower[slot] || value > box.upper[slot]) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "design.%s = %g outside the design box [%g, %g]",
                    key.c_str(), value, box.lower[slot], box.upper[slot]);
      bad_param(buf);
    }
    x[slot] = value;
  }
  return DesignVector::from_vector(x);
}

DesignGoals parse_goals(const Json& params) {
  DesignGoals g;
  const Json* obj = params.find("goals");
  if (obj == nullptr) return g;
  if (!obj->is_object()) bad_param("goals must be an object");
  g.nf_goal_db = num_in(*obj, "nf_db", g.nf_goal_db, 0.05, 10.0);
  g.gain_goal_db = num_in(*obj, "gain_db", g.gain_goal_db, 0.0, 40.0);
  g.s11_goal_db = num_in(*obj, "s11_db", g.s11_goal_db, -40.0, 0.0);
  g.s22_goal_db = num_in(*obj, "s22_db", g.s22_goal_db, -40.0, 0.0);
  g.nf_weight = num_in(*obj, "nf_weight", g.nf_weight, 0.05, 100.0);
  g.gain_weight = num_in(*obj, "gain_weight", g.gain_weight, 0.05, 100.0);
  g.s11_weight = num_in(*obj, "s11_weight", g.s11_weight, 0.05, 100.0);
  g.s22_weight = num_in(*obj, "s22_weight", g.s22_weight, 0.05, 100.0);
  g.mu_margin = num_in(*obj, "mu_margin", g.mu_margin, 0.5, 2.0);
  g.id_max_a = num_in(*obj, "id_max_a", g.id_max_a, 0.001, 0.5);
  return g;
}

std::uint64_t parse_seed(const Json& params) {
  return uint_in(params, "seed", 1, 0, (1ULL << 53) - 1);
}

/// Optional mission scenario (by catalog name).  nullptr when absent, so
/// every job without the field behaves exactly as before the mission
/// library existed.
const mission::Scenario* parse_scenario(const Json& params) {
  const Json* v = params.find("scenario");
  if (v == nullptr) return nullptr;
  if (!v->is_string()) bad_param("scenario must be a string");
  const mission::Scenario* s = mission::find_scenario(v->as_string());
  if (s == nullptr) {
    std::string names;
    for (const mission::Scenario& sc : mission::scenario_catalog()) {
      if (!names.empty()) names += " | ";
      names += sc.name;
    }
    bad_param("unknown scenario '" + v->as_string() + "' (" + names + ")");
  }
  return s;
}

Json scenario_json(const mission::ScenarioAnalysis& analysis) {
  Json o = Json::object();
  o.set("name", Json::string(analysis.scenario));
  o.set("t_ant_k", Json::number(analysis.t_ant_k));
  o.set("nf_goal_db", Json::number(analysis.nf_goal_db));
  Json subs = Json::array();
  for (const mission::SubBand& band : analysis.sub_bands) {
    Json b = Json::object();
    b.set("constellation", Json::string(band.constellation));
    b.set("carrier_hz", Json::number(band.carrier_hz));
    b.set("weight", Json::number(band.weight));
    b.set("mean_visible", Json::number(band.mean_visible));
    b.set("mean_pdop", Json::number(band.mean_pdop));
    b.set("mean_signal_dbw", Json::number(band.mean_signal_dbw));
    subs.push(std::move(b));
  }
  o.set("sub_bands", std::move(subs));
  return o;
}

/// Trace sink shared by every optimizer-backed job: records for the
/// result's trace_csv, forwards to the client's progress stream, and
/// polls cancellation — all at the optimizer's generation barriers, on
/// the job's thread, so cancellation can never tear a generation.
obs::TraceSink service_sink(const JobContext& ctx,
                            obs::ConvergenceTrace* trace) {
  return [&ctx, trace](const obs::TraceRecord& r) {
#if defined(GNSSLNA_OBS_ENABLED)
    // Generation barrier marker in the owning job's span tree (leaf
    // record; the count of these per job is deterministic).
    static const obs::SpanCategory kGeneration("service.job.generation");
    obs::job_trace_event(kGeneration, 0);
#endif
    trace->record(r);
    if (ctx.progress) ctx.progress(r);
    if (ctx.check_cancel) ctx.check_cancel();
  };
}

PlanCache::Lease lease_evaluator(const JobContext& ctx,
                                 const device::Phemt& device,
                                 const AmplifierConfig& config,
                                 const std::vector<double>& band_hz) {
  GNSSLNA_OBS_SPAN("service.job.plan_acquire");
  try {
    if (ctx.plans != nullptr) {
      return ctx.plans->acquire(topology_revision(config, band_hz), device,
                                config, band_hz);
    }
    return std::make_shared<amplifier::BandEvaluator>(device, config, band_hz);
  } catch (const std::exception& e) {
    throw JobError("infeasible", e.what());
  }
}

std::string revision_hex(std::uint64_t revision) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(revision));
  return buf;
}

Json report_json(const amplifier::BandReport& r) {
  Json o = Json::object();
  o.set("nf_avg_db", Json::number(r.nf_avg_db));
  o.set("nf_max_db", Json::number(r.nf_max_db));
  o.set("gt_min_db", Json::number(r.gt_min_db));
  o.set("gt_avg_db", Json::number(r.gt_avg_db));
  o.set("s11_worst_db", Json::number(r.s11_worst_db));
  o.set("s22_worst_db", Json::number(r.s22_worst_db));
  o.set("mu_min", Json::number(r.mu_min));
  o.set("id_a", Json::number(r.id_a));
  return o;
}

Json design_json(const DesignVector& d) {
  const std::vector<std::string>& names = design_field_names();
  const std::vector<double> x = d.to_vector();
  Json o = Json::object();
  for (std::size_t i = 0; i < names.size(); ++i) {
    o.set(names[i], Json::number(x[i]));
  }
  return o;
}

// --- evaluate --------------------------------------------------------------

Json run_evaluate(const Json& params, const JobContext& ctx) {
  GNSSLNA_OBS_COUNT("service.jobs.evaluate");
  const AmplifierConfig config = parse_config(params);
  const std::vector<double> band = parse_band(params);
  const DesignVector design = parse_design(params);
  const device::Phemt device = device::Phemt::reference_device();

  const PlanCache::Lease lease = lease_evaluator(ctx, device, config, band);
  if (ctx.check_cancel) ctx.check_cancel();
  amplifier::BandReport report;
  try {
    report = lease->evaluate(design);
  } catch (const std::exception& e) {
    throw JobError("infeasible", e.what());
  }

  Json out = Json::object();
  out.set("report", report_json(report));
  out.set("plan_revision",
          Json::string(revision_hex(topology_revision(config, band))));
  return out;
}

// --- sweep -----------------------------------------------------------------

Json run_sweep(const Json& params, const JobContext& ctx) {
  GNSSLNA_OBS_COUNT("service.jobs.sweep");
  const AmplifierConfig config = parse_config(params);
  const DesignVector design = parse_design(params);
  const double f_lo = num_in(params, "f_lo_hz", 1.0e9, 0.2e9, 20e9);
  const double f_hi = num_in(params, "f_hi_hz", 2.0e9, 0.2e9, 20e9);
  if (!(f_lo < f_hi)) bad_param("f_lo_hz must be < f_hi_hz");
  const std::size_t n = static_cast<std::size_t>(
      uint_in(params, "n_points", 21, 2, 201));
  const bool with_noise = bool_in(params, "with_noise", true);

  const device::Phemt device = device::Phemt::reference_device();
  std::unique_ptr<amplifier::LnaDesign> lna;
  try {
    lna = std::make_unique<amplifier::LnaDesign>(device, config, design);
  } catch (const std::exception& e) {
    throw JobError("infeasible", e.what());
  }
  if (ctx.check_cancel) ctx.check_cancel();

  const std::vector<double> grid = rf::linear_grid(f_lo, f_hi, n);
  const rf::SweepData sweep = lna->s_sweep(grid, 1);

  const auto db20 = [](const rf::Complex& z) {
    return 20.0 * std::log10(std::abs(z));
  };
  Json freq = Json::array(), s11 = Json::array(), s21 = Json::array(),
       s22 = Json::array(), nf = Json::array();
  for (std::size_t i = 0; i < grid.size(); ++i) {
    freq.push(Json::number(grid[i]));
    s11.push(Json::number(db20(sweep[i].s11)));
    s21.push(Json::number(db20(sweep[i].s21)));
    s22.push(Json::number(db20(sweep[i].s22)));
    if (with_noise) nf.push(Json::number(lna->noise_figure_db(grid[i])));
    if (ctx.check_cancel && (i & 15u) == 15u) ctx.check_cancel();
  }

  Json out = Json::object();
  out.set("frequency_hz", std::move(freq));
  out.set("s11_db", std::move(s11));
  out.set("s21_db", std::move(s21));
  out.set("s22_db", std::move(s22));
  if (with_noise) out.set("nf_db", std::move(nf));
  out.set("group_delay_ripple_s", Json::number(rf::group_delay_ripple(sweep)));
  return out;
}

// --- design ----------------------------------------------------------------

Json goal_result_json(const optimize::GoalResult& r) {
  Json o = Json::object();
  o.set("attainment", Json::number(r.attainment));
  o.set("constraint_violation", Json::number(r.constraint_violation));
  o.set("evaluations", Json::number(static_cast<double>(r.evaluations)));
  o.set("converged", Json::boolean(r.converged));
  return o;
}

/// Scenario-parameterized design: the same improved goal-attainment
/// engine on mission::ScenarioObjective's constellation-weighted
/// objectives.  Result shape mirrors the band-average design job, plus a
/// "scenario" object with the analysis and the weighted figures.
Json run_scenario_design_job(const mission::Scenario& scenario,
                             const Json& params, const JobContext& ctx) {
  if (params.find("band_hz") != nullptr) {
    bad_param("band_hz cannot be combined with scenario (the scenario fixes "
              "the evaluation grids)");
  }
  const AmplifierConfig config = parse_config(params);

  mission::ScenarioDesignOptions options;
  options.goals = parse_goals(params);
  options.optimizer.threads = 1;
  options.optimizer.de_generations = static_cast<std::size_t>(
      uint_in(params, "de_generations", 6, 1, 300));
  options.optimizer.de_population = static_cast<std::size_t>(
      uint_in(params, "de_population", 16, 8, 128));
  options.optimizer.polish_evaluations = static_cast<std::size_t>(
      uint_in(params, "polish_evaluations", 400, 0, 20000));

  obs::ConvergenceTrace trace;
  options.optimizer.trace = service_sink(ctx, &trace);

  const device::Phemt device = device::Phemt::reference_device();
  numeric::Rng rng(parse_seed(params));
  mission::ScenarioDesignOutcome outcome;
  try {
    outcome =
        mission::run_scenario_design(device, config, scenario, rng, options);
  } catch (const JobCancelled&) {
    throw;
  } catch (const JobTimeout&) {
    throw;
  } catch (const std::exception& e) {
    throw JobError("infeasible", e.what());
  }

  const auto figures_json = [](const mission::ScenarioObjective::Figures& f) {
    Json o = Json::object();
    o.set("nf_weighted_db", Json::number(f.nf_weighted_db));
    o.set("gt_weighted_db", Json::number(f.gt_weighted_db));
    return o;
  };

  Json out = Json::object();
  out.set("optimization", goal_result_json(outcome.optimization));
  out.set("continuous", design_json(outcome.continuous));
  out.set("continuous_report", report_json(outcome.continuous_figures.full));
  out.set("continuous_weighted", figures_json(outcome.continuous_figures));
  out.set("snapped", design_json(outcome.snapped));
  out.set("snapped_report", report_json(outcome.snapped_figures.full));
  out.set("snapped_weighted", figures_json(outcome.snapped_figures));
  out.set("scenario", scenario_json(mission::analyze_scenario(scenario)));
  out.set("trace_csv", Json::string(trace.to_csv()));
  return out;
}

Json run_design(const Json& params, const JobContext& ctx) {
  GNSSLNA_OBS_COUNT("service.jobs.design");
  if (const mission::Scenario* scenario = parse_scenario(params)) {
    return run_scenario_design_job(*scenario, params, ctx);
  }
  const AmplifierConfig config = parse_config(params);
  const std::vector<double> band = parse_band(params);

  amplifier::DesignFlowOptions options;
  options.goals = parse_goals(params);
  options.band_hz = band;
  // Jobs are serial inside (the scheduler provides concurrency BETWEEN
  // jobs); service budgets default far below the library's
  // paper-reproduction defaults and are capped for admission control.
  options.optimizer.threads = 1;
  options.optimizer.de_generations = static_cast<std::size_t>(
      uint_in(params, "de_generations", 6, 1, 300));
  options.optimizer.de_population = static_cast<std::size_t>(
      uint_in(params, "de_population", 16, 8, 128));
  options.optimizer.polish_evaluations = static_cast<std::size_t>(
      uint_in(params, "polish_evaluations", 400, 0, 20000));

  obs::ConvergenceTrace trace;
  options.optimizer.trace = service_sink(ctx, &trace);

  const device::Phemt device = device::Phemt::reference_device();
  if (ctx.plans != nullptr) {
    options.evaluator = lease_evaluator(ctx, device, config, band);
  }

  numeric::Rng rng(parse_seed(params));
  amplifier::DesignOutcome outcome;
  try {
    outcome = amplifier::run_design_flow(device, config, rng, options);
  } catch (const JobCancelled&) {
    throw;
  } catch (const JobTimeout&) {
    throw;
  } catch (const std::exception& e) {
    throw JobError("infeasible", e.what());
  }

  Json out = Json::object();
  out.set("optimization", goal_result_json(outcome.optimization));
  out.set("continuous", design_json(outcome.continuous));
  out.set("continuous_report", report_json(outcome.continuous_report));
  out.set("snapped", design_json(outcome.snapped));
  out.set("snapped_report", report_json(outcome.snapped_report));
  Json bias = Json::object();
  bias.set("r_drain_ohm", Json::number(outcome.bias.r_drain));
  bias.set("id_a", Json::number(outcome.bias.id_a));
  bias.set("vg_bias_v", Json::number(outcome.bias.vg_bias));
  out.set("bias", std::move(bias));
  out.set("trace_csv", Json::string(trace.to_csv()));
  return out;
}

// --- yield -----------------------------------------------------------------

Json run_yield_job(const Json& params, const JobContext& ctx) {
  GNSSLNA_OBS_COUNT("service.jobs.yield");
  const AmplifierConfig config = parse_config(params);
  const std::vector<double> band = parse_band(params);
  const DesignVector design = parse_design(params);
  DesignGoals goals = parse_goals(params);
  // A scenario re-anchors the pass/fail NF line at its physically derived
  // goal (explicit goals.nf_db is rejected to keep the result a pure
  // function of unambiguous params).
  const mission::Scenario* scenario = parse_scenario(params);
  std::optional<mission::ScenarioAnalysis> analysis;
  if (scenario != nullptr) {
    const Json* g = params.find("goals");
    if (g != nullptr && g->find("nf_db") != nullptr) {
      bad_param("goals.nf_db cannot be combined with scenario (the scenario "
                "derives the NF goal)");
    }
    analysis = mission::analyze_scenario(*scenario);
    goals.nf_goal_db = analysis->nf_goal_db;
  }
  const std::size_t samples = static_cast<std::size_t>(
      uint_in(params, "samples", 256, 1, 1ULL << 20));

  amplifier::YieldOptions options;
  options.threads = 1;
  const std::string sampler = params.string_at("sampler", "pseudo");
  if (sampler == "pseudo") {
    options.sampler = amplifier::YieldSampler::kPseudoRandom;
  } else if (sampler == "sobol") {
    options.sampler = amplifier::YieldSampler::kSobol;
  } else {
    bad_param("unknown sampler '" + sampler + "' (pseudo | sobol)");
  }

  obs::ConvergenceTrace trace;
  options.trace = service_sink(ctx, &trace);

  const device::Phemt device = device::Phemt::reference_device();
  numeric::Rng rng(parse_seed(params));
  amplifier::YieldReport report;
  try {
    report = amplifier::run_yield(device, config, design, goals, samples, rng,
                                  options);
  } catch (const JobCancelled&) {
    throw;
  } catch (const JobTimeout&) {
    throw;
  } catch (const std::exception& e) {
    throw JobError("infeasible", e.what());
  }

  Json out = Json::object();
  out.set("samples", Json::number(static_cast<double>(report.samples)));
  out.set("passes", Json::number(static_cast<double>(report.passes)));
  out.set("failed_evals",
          Json::number(static_cast<double>(report.failed_evals)));
  out.set("pass_rate", Json::number(report.pass_rate));
  out.set("pass_rate_ci95_lo", Json::number(report.pass_rate_ci95_lo));
  out.set("pass_rate_ci95_hi", Json::number(report.pass_rate_ci95_hi));
  out.set("nf_avg_p95_db", Json::number(report.nf_avg_p95_db));
  out.set("gt_min_p5_db", Json::number(report.gt_min_p5_db));
  out.set("nf_avg_mean_db", Json::number(report.nf_avg_mean_db));
  out.set("gt_min_mean_db", Json::number(report.gt_min_mean_db));
  out.set("nf_avg_min_db", Json::number(report.nf_avg_min_db));
  out.set("nf_avg_max_db", Json::number(report.nf_avg_max_db));
  out.set("gt_min_min_db", Json::number(report.gt_min_min_db));
  out.set("gt_min_max_db", Json::number(report.gt_min_max_db));
  if (analysis.has_value()) out.set("scenario", scenario_json(*analysis));
  out.set("trace_csv", Json::string(trace.to_csv()));
  return out;
}

// --- extract ---------------------------------------------------------------

Json run_extract(const Json& params, const JobContext& ctx) {
  GNSSLNA_OBS_COUNT("service.jobs.extract");
  const std::string model_key = params.string_at("model", "angelov");
  std::unique_ptr<device::FetModel> prototype;
  try {
    prototype = device::make_model(model_key);
  } catch (const std::invalid_argument& e) {
    throw JobError("bad_params", e.what());
  }
  const std::size_t n_freq =
      static_cast<std::size_t>(uint_in(params, "n_freq", 10, 4, 60));

  extract::ThreeStepOptions options;
  options.threads = 1;
  options.de_generations = static_cast<std::size_t>(
      uint_in(params, "de_generations", 4, 1, 200));
  options.de_population = static_cast<std::size_t>(
      uint_in(params, "de_population", 16, 8, 128));

  extract::MeasurementNoise noise;
  const Json* n = params.find("noise");
  if (n != nullptr) {
    if (!n->is_object()) bad_param("noise must be an object");
    noise.outlier_fraction =
        num_in(*n, "outlier_fraction", noise.outlier_fraction, 0.0, 0.5);
    noise.s_sigma = num_in(*n, "s_sigma", noise.s_sigma, 0.0, 0.1);
    noise.dc_relative_sigma =
        num_in(*n, "dc_relative_sigma", noise.dc_relative_sigma, 0.0, 0.2);
  }

  // One seed feeds two independent counter-derived streams, so the
  // synthetic bench and the extraction search never share draws.
  const numeric::Rng base(parse_seed(params));
  numeric::Rng measurement_rng = base.split(1);
  numeric::Rng extraction_rng = base.split(2);

  const device::Phemt truth = device::Phemt::reference_device();
  const extract::MeasurementPlan plan =
      extract::MeasurementPlan::standard_plan(n_freq);
  const extract::MeasurementSet data =
      extract::synthesize_measurements(truth, plan, noise, measurement_rng);
  if (ctx.check_cancel) ctx.check_cancel();

  obs::ConvergenceTrace trace;
  options.trace = service_sink(ctx, &trace);
  const extract::ExtractionResult result = extract::three_step_extract(
      *prototype, data, truth.extrinsics(), extraction_rng, options);

  Json values = Json::object();
  const std::vector<device::ParamSpec> specs = prototype->param_specs();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    values.set(specs[i].name, Json::number(result.params[i]));
  }
  static const char* const kSharedNames[] = {"cgs0", "cgd0", "cds",
                                             "ri",   "tau",  "vbi"};
  for (std::size_t i = 0; i < extract::kSharedParamCount; ++i) {
    values.set(kSharedNames[i], Json::number(result.params[specs.size() + i]));
  }

  Json out = Json::object();
  out.set("model", Json::string(result.model_name));
  out.set("params", std::move(values));
  out.set("rms_s", Json::number(result.error.rms_s));
  out.set("rms_dc_rel", Json::number(result.error.rms_dc_rel));
  out.set("evaluations",
          Json::number(static_cast<double>(result.evaluations)));
  out.set("converged", Json::boolean(result.converged));
  out.set("trace_csv", Json::string(trace.to_csv()));
  return out;
}

}  // namespace

bool is_job_type(std::string_view type) {
  return type == "evaluate" || type == "sweep" || type == "design" ||
         type == "yield" || type == "extract";
}

Json list_scenarios_json() {
  Json out = Json::array();
  for (const mission::Scenario& s : mission::scenario_catalog()) {
    Json o = scenario_json(mission::analyze_scenario(s));
    o.set("description", Json::string(s.description));
    o.set("has_blocker", Json::boolean(s.blocker.has_value()));
    if (s.blocker.has_value()) {
      o.set("blocker_hz", Json::number(s.blocker->f_blocker_hz));
    }
    out.push(std::move(o));
  }
  return out;
}

Json run_job(const std::string& type, const Json& params,
             const JobContext& ctx) {
  if (!params.is_object() && !params.is_null()) {
    bad_param("params must be an object");
  }
  if (type == "evaluate") return run_evaluate(params, ctx);
  if (type == "sweep") return run_sweep(params, ctx);
  if (type == "design") return run_design(params, ctx);
  if (type == "yield") return run_yield_job(params, ctx);
  if (type == "extract") return run_extract(params, ctx);
  throw JobError("unknown_type", "unknown job type '" + type + "'");
}

}  // namespace gnsslna::service
