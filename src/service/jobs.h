// The five job types the design-as-a-service server executes, as plain
// functions from (validated JSON params) to (deterministic JSON result):
//
//   evaluate — one BandReport for a design point (plan-cache lease);
//   sweep    — swept S-parameters / NF / group delay of a design;
//   design   — the full goal-attainment design flow, with convergence
//              trace, sharing compiled stamps through the plan cache;
//   yield    — Monte-Carlo / Sobol tolerance analysis of a design;
//   extract  — synthetic-bench three-step pHEMT model identification.
//
// Contract (pinned by tests/test_service.cpp): a job's result payload is
// a pure function of (type, params) — every stochastic stage is seeded
// from params["seed"], every optimizer runs threads == 1 inside the job
// (the scheduler supplies the concurrency BETWEEN jobs), and nothing
// wall-clock enters the payload — so the serialized result is
// bit-identical whether the job runs alone or under saturating traffic.
//
// Budget-style parameters are range-checked and capped (admission
// control): a hostile or confused client cannot submit a job whose cost
// is unbounded.  Violations throw JobError, which the server maps to a
// well-formed error reply; JobCancelled / JobTimeout are thrown from
// ctx.check_cancel at generation barriers and unwind the optimizer
// stacks through their RAII scopes.
#pragma once

#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "obs/trace.h"
#include "service/json.h"
#include "service/plan_cache.h"

namespace gnsslna::service {

/// Client-visible job failure: bad parameters, unknown type, infeasible
/// topology.  `code` is the machine-readable error class on the wire.
class JobError : public std::runtime_error {
 public:
  JobError(std::string code, const std::string& what)
      : std::runtime_error(what), code_(std::move(code)) {}
  const std::string& code() const { return code_; }

 private:
  std::string code_;
};

/// Thrown (from JobContext::check_cancel) when the client cancelled the
/// job; the server replies {"status":"cancelled"}.
class JobCancelled : public std::runtime_error {
 public:
  JobCancelled() : std::runtime_error("job cancelled") {}
};

/// Thrown when the job's deadline passed; reply {"status":"timeout"}.
class JobTimeout : public std::runtime_error {
 public:
  JobTimeout() : std::runtime_error("job deadline exceeded") {}
};

/// Ambient services a job runs against.  All optional: a default
/// context runs the job standalone (tests call run_job directly).
struct JobContext {
  /// Shared compiled-plan tier; nullptr builds per-job evaluators.
  PlanCache* plans = nullptr;
  /// Invoked at every generation barrier / trace point; throws
  /// JobCancelled or JobTimeout to stop the job.  Must be cheap.
  std::function<void()> check_cancel = {};
  /// Streaming per-generation progress (forwarded to the client as
  /// `progress` events by the server).  Called on the job's thread at
  /// the same barriers as check_cancel.
  obs::TraceSink progress = {};
};

/// True for the five job types above.
bool is_job_type(std::string_view type);

/// Runs one job to completion on the calling thread and returns its
/// result payload.  Throws JobError / JobCancelled / JobTimeout.
Json run_job(const std::string& type, const Json& params,
             const JobContext& ctx);

/// The mission-scenario catalog as a JSON array (name, description,
/// blocker flag, and the deterministic analysis: T_ant, derived NF goal,
/// per-constellation sub-band weights).  Backs the `list_scenarios` op;
/// computed once and cached — analyze_scenario is pure.
Json list_scenarios_json();

}  // namespace gnsslna::service
