#include "service/telemetry.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

namespace gnsslna::service {

namespace {

Json u64(std::uint64_t v) { return Json::number(static_cast<double>(v)); }

}  // namespace

Json metrics_to_json(const obs::MetricsSnapshot& snapshot,
                     bool deterministic) {
  Json counters = Json::object();
  for (const obs::CounterValue& c : snapshot.counters) {
    const bool zero = deterministic && obs::metric_is_observational(c.name);
    counters.set(c.name, u64(zero ? 0 : c.value));
  }
  Json gauges = Json::object();
  for (const obs::GaugeValue& g : snapshot.gauges) {
    const bool zero = deterministic && obs::metric_is_observational(g.name);
    gauges.set(g.name, Json::number(
                           zero ? 0.0 : static_cast<double>(g.value)));
  }
  Json histograms = Json::object();
  for (const obs::HistogramValue& h : snapshot.histograms) {
    const bool zero = deterministic && obs::metric_is_observational(h.name);
    Json le = Json::array();
    Json counts = Json::array();
    for (std::size_t b = 0; b < h.upper_bounds.size(); ++b) {
      le.push(Json::number(h.upper_bounds[b]));
      counts.push(u64(zero ? 0 : h.counts[b]));
    }
    counts.push(u64(zero ? 0 : h.counts[h.upper_bounds.size()]));
    Json entry = Json::object();
    entry.set("le", std::move(le));
    entry.set("counts", std::move(counts));
    entry.set("sum",
              Json::number(zero ? 0.0 : static_cast<double>(h.sum)));
    entry.set("count", u64(zero ? 0 : h.total));
    histograms.set(h.name, std::move(entry));
  }
  Json out = Json::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  return out;
}

Json metrics_json(bool deterministic) {
  return metrics_to_json(obs::metrics_snapshot(), deterministic);
}

std::string metrics_prometheus(bool deterministic) {
  return obs::prometheus_text(obs::metrics_snapshot(), deterministic);
}

Json flight_to_json(const std::vector<obs::FlightEvent>& events,
                    bool deterministic) {
  std::vector<obs::FlightEvent> sorted = events;
  if (deterministic) {
    std::sort(sorted.begin(), sorted.end(),
              [](const obs::FlightEvent& a, const obs::FlightEvent& b) {
                return a.job_id != b.job_id ? a.job_id < b.job_id
                                            : a.job_seq < b.job_seq;
              });
  }
  const std::vector<std::string> names = obs::counter_names();
  Json out = Json::array();
  for (const obs::FlightEvent& e : sorted) {
    Json doc = Json::object();
    doc.set("job", u64(e.job_id));
    doc.set("seq", u64(e.job_seq));
    doc.set("type", Json::string(obs::flight_type_name(e.type)));
    doc.set("job_type", Json::string(e.job_type));
    doc.set("client", Json::string(e.client));
    doc.set("order", u64(deterministic ? 0 : e.order));
    doc.set("duration_us", u64(deterministic ? 0 : e.duration_us));
    // Deltas sorted by counter NAME (ids are registration-order-dependent);
    // deterministic dumps drop observational counters, whose per-job work
    // depends on lease warmth and thread placement.
    std::map<std::string, std::uint64_t> deltas;
    for (std::uint32_t i = 0; i < e.delta_count; ++i) {
      const obs::FlightEvent::Delta& d = e.deltas[i];
      if (d.counter_id >= names.size()) continue;
      const std::string& name = names[d.counter_id];
      if (deterministic && obs::metric_is_observational(name)) continue;
      deltas[name] = d.value;
    }
    Json deltas_doc = Json::object();
    for (const auto& [name, value] : deltas) deltas_doc.set(name, u64(value));
    doc.set("deltas", std::move(deltas_doc));
    out.push(std::move(doc));
  }
  return out;
}

Json flight_json(bool deterministic) {
  return flight_to_json(obs::flight_snapshot(), deterministic);
}

Json flight_json_for_job(std::uint64_t job_id) {
  return flight_to_json(obs::flight_for_job(job_id), obs::deterministic());
}

Json span_tree_json(const obs::JobTrace& trace, bool deterministic) {
  // Fold the flat open-order record list into an aggregated tree: one node
  // per (parent, span name), children in first-open order, counts summed.
  struct Node {
    std::uint32_t span_id = 0;
    std::uint64_t count = 0;
    std::uint64_t ns = 0;
    std::vector<std::size_t> children;
  };
  std::vector<Node> nodes(1);  // nodes[0] = synthetic root
  // stack[d] = node index currently open at depth d - 1 (stack[0] = root).
  std::vector<std::size_t> stack = {0};
  for (const obs::JobTrace::Record& rec : trace.records) {
    const std::size_t parent_depth =
        std::min<std::size_t>(rec.depth, stack.size() - 1);
    stack.resize(parent_depth + 1);
    Node& parent = nodes[stack[parent_depth]];
    std::size_t child = 0;
    for (const std::size_t c : parent.children) {
      if (nodes[c].span_id == rec.span_id) {
        child = c;
        break;
      }
    }
    if (child == 0) {
      child = nodes.size();
      nodes.push_back({rec.span_id, 0, 0, {}});
      nodes[stack[parent_depth]].children.push_back(child);
    }
    nodes[child].count += 1;
    nodes[child].ns += rec.dur_ns;
    stack.push_back(child);
  }

  const std::vector<std::string> names = obs::span_names();
  // Bottom-up assembly (children have larger indices than their parents).
  std::vector<Json> docs(nodes.size());
  for (std::size_t i = nodes.size(); i-- > 0;) {
    const Node& n = nodes[i];
    Json doc = Json::object();
    doc.set("name", Json::string(i == 0 ? "job"
                                 : n.span_id < names.size()
                                     ? names[n.span_id]
                                     : "?"));
    doc.set("count", u64(i == 0 ? 1 : n.count));
    const std::uint64_t ns = i == 0 ? [&] {
      std::uint64_t total = 0;
      for (const std::size_t c : n.children) total += nodes[c].ns;
      return total;
    }() : n.ns;
    doc.set("total_us", u64(deterministic ? 0 : ns / 1000));
    if (!n.children.empty()) {
      Json children = Json::array();
      for (const std::size_t c : n.children) {
        children.push(std::move(docs[c]));
      }
      doc.set("children", std::move(children));
    }
    docs[i] = std::move(doc);
  }
  return std::move(docs[0]);
}

double latency_percentile_us(const std::uint64_t buckets[32], double q) {
  std::uint64_t total = 0;
  for (int b = 0; b < 32; ++b) total += buckets[b];
  if (total == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  const std::uint64_t k =
      static_cast<std::uint64_t>(q * static_cast<double>(total)) + 1;
  std::uint64_t cum = 0;
  for (int b = 0; b < 32; ++b) {
    if (buckets[b] == 0) continue;
    cum += buckets[b];
    if (cum < k) continue;
    const double lo = b == 0 ? 0.0 : static_cast<double>(1ULL << b);
    const double hi = static_cast<double>(1ULL << (b + 1));
    const double j = static_cast<double>(k - (cum - buckets[b]));
    return lo + (hi - lo) * (j - 0.5) / static_cast<double>(buckets[b]);
  }
  return static_cast<double>(1ULL << 32);
}

const std::vector<SloSpec>& default_slos() {
  // Generous bounds: a healthy server on any host attains them; a wedged
  // plan cache, a runaway job mix, or admission collapse misses them.
  static const std::vector<SloSpec> kSlos = {
      {"latency_p50", SloSpec::Kind::kLatencyQuantile, 0.50, 500000.0},
      {"latency_p99", SloSpec::Kind::kLatencyQuantile, 0.99, 10000000.0},
      {"rejection_rate", SloSpec::Kind::kRejectionRate, 0.0, 0.25},
      {"error_rate", SloSpec::Kind::kErrorRate, 0.0, 0.001},
  };
  return kSlos;
}

Json evaluate_slos_json(const std::vector<SloSpec>& slos) {
  const obs::MetricsSnapshot snapshot = obs::metrics_snapshot();
  const obs::HistogramValue* latency = nullptr;
  for (const obs::HistogramValue& h : snapshot.histograms) {
    if (h.name == "service.job_latency_us") {
      latency = &h;
      break;
    }
  }
  const auto counter = [&](const char* name) -> std::uint64_t {
    for (const obs::CounterValue& c : snapshot.counters) {
      if (c.name == name) return c.value;
    }
    return 0;
  };
  const std::uint64_t submitted = counter("service.submitted");

  Json out = Json::array();
  for (const SloSpec& slo : slos) {
    double measured = 0.0;
    std::uint64_t samples = 0;
    const char* kind = "";
    switch (slo.kind) {
      case SloSpec::Kind::kLatencyQuantile:
        kind = "latency";
        samples = latency != nullptr ? latency->total : 0;
        measured = latency != nullptr
                       ? obs::histogram_quantile(*latency, slo.quantile)
                       : 0.0;
        break;
      case SloSpec::Kind::kRejectionRate:
        kind = "rejection_rate";
        samples = submitted;
        measured = submitted == 0
                       ? 0.0
                       : static_cast<double>(counter("service.rejected")) /
                             static_cast<double>(submitted);
        break;
      case SloSpec::Kind::kErrorRate:
        kind = "error_rate";
        samples = submitted;
        measured = submitted == 0
                       ? 0.0
                       : static_cast<double>(counter("service.errors")) /
                             static_cast<double>(submitted);
        break;
    }
    Json doc = Json::object();
    doc.set("name", Json::string(slo.name));
    doc.set("kind", Json::string(kind));
    if (slo.kind == SloSpec::Kind::kLatencyQuantile) {
      doc.set("quantile", Json::number(slo.quantile));
    }
    doc.set("limit", Json::number(slo.limit));
    doc.set("measured", Json::number(measured));
    doc.set("samples", u64(samples));
    // Vacuously attained with no samples (including GNSSLNA_OBS=OFF).
    doc.set("attained", Json::boolean(samples == 0 || measured <= slo.limit));
    out.push(std::move(doc));
  }
  return out;
}

}  // namespace gnsslna::service
