#include "obs/obs.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace gnsslna::obs {

namespace {

// Fixed shard capacity: registration throws past these, which surfaces at
// the new instrumentation site's first execution, never silently.
constexpr std::size_t kMaxCounters = 192;
constexpr std::size_t kMaxSpans = 64;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct SpanEvent {
  std::uint32_t id = 0;
  std::uint32_t tid = 0;       ///< shard registration index (stable per run)
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t job = 0;       ///< owning service job id; 0 = none
};

struct Shard;
struct EventBuffer;

/// Leaked singleton: worker threads (and their thread-local shards) may
/// outlive every other static, so the registry must never be destroyed.
struct Registry {
  std::mutex mutex;

  std::vector<std::string> counter_names;
  std::unordered_map<std::string, std::uint32_t> counter_ids;
  std::vector<std::string> span_names;
  std::unordered_map<std::string, std::uint32_t> span_ids;

  std::vector<Shard*> shards;
  std::uint64_t retired_counters[kMaxCounters] = {};
  std::uint64_t retired_span_count[kMaxSpans] = {};
  std::uint64_t retired_span_ns[kMaxSpans] = {};

  std::vector<EventBuffer*> event_buffers;
  std::vector<SpanEvent> retired_events;
  std::uint32_t next_shard_tid = 0;

  static Registry& get() {
    static Registry* g = new Registry;  // intentionally leaked
    return *g;
  }
};

/// Per-thread slot arrays.  Each slot is written only by its owning thread
/// (relaxed load+store, no RMW needed), and read by snapshots — atomics
/// make that pattern race-free and TSan-clean.
struct Shard {
  std::atomic<std::uint64_t> counters[kMaxCounters] = {};
  std::atomic<std::uint64_t> span_count[kMaxSpans] = {};
  std::atomic<std::uint64_t> span_ns[kMaxSpans] = {};
  std::uint32_t tid = 0;

  Shard() {
    Registry& r = Registry::get();
    std::lock_guard<std::mutex> lock(r.mutex);
    tid = r.next_shard_tid++;
    r.shards.push_back(this);
  }

  ~Shard() {
    Registry& r = Registry::get();
    std::lock_guard<std::mutex> lock(r.mutex);
    for (std::size_t i = 0; i < kMaxCounters; ++i) {
      r.retired_counters[i] += counters[i].load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < kMaxSpans; ++i) {
      r.retired_span_count[i] +=
          span_count[i].load(std::memory_order_relaxed);
      r.retired_span_ns[i] += span_ns[i].load(std::memory_order_relaxed);
    }
    r.shards.erase(std::find(r.shards.begin(), r.shards.end(), this));
  }

  void bump(std::atomic<std::uint64_t>& slot, std::uint64_t n) {
    // Single-writer: plain load+store instead of a locked fetch_add.
    slot.store(slot.load(std::memory_order_relaxed) + n,
               std::memory_order_relaxed);
  }
};

Shard& local_shard() {
  thread_local Shard shard;
  return shard;
}

/// Captured span events of one thread.  Registered like shards; retired
/// events are moved into the registry on thread exit so traces survive
/// short-lived threads.
struct EventBuffer {
  std::vector<SpanEvent> events;

  EventBuffer() {
    Registry& r = Registry::get();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.event_buffers.push_back(this);
  }

  ~EventBuffer() {
    Registry& r = Registry::get();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.retired_events.insert(r.retired_events.end(), events.begin(),
                            events.end());
    r.event_buffers.erase(
        std::find(r.event_buffers.begin(), r.event_buffers.end(), this));
  }
};

EventBuffer& local_events() {
  thread_local EventBuffer buffer;
  return buffer;
}

bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return false;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
         std::strcmp(v, "on") == 0;
}

std::atomic<bool> g_enabled{env_flag("GNSSLNA_OBS")};
std::atomic<bool> g_deterministic{env_flag("GNSSLNA_OBS_DETERMINISTIC")};
std::atomic<bool> g_capture{false};

thread_local JobTrace* t_job_trace = nullptr;

std::uint32_t register_name(std::vector<std::string>& names,
                            std::unordered_map<std::string, std::uint32_t>& ids,
                            const char* name, std::size_t capacity,
                            const char* kind) {
  Registry& r = Registry::get();
  std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = ids.find(name);
  if (it != ids.end()) return it->second;
  if (names.size() >= capacity) {
    throw std::length_error(std::string("obs: too many ") + kind +
                            " registrations (raise kMax in obs.cpp)");
  }
  const std::uint32_t id = static_cast<std::uint32_t>(names.size());
  names.emplace_back(name);
  ids.emplace(name, id);
  return id;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool deterministic() { return g_deterministic.load(std::memory_order_relaxed); }

void set_deterministic(bool on) {
  g_deterministic.store(on, std::memory_order_relaxed);
}

Counter::Counter(const char* name)
    : id_(register_name(Registry::get().counter_names,
                        Registry::get().counter_ids, name, kMaxCounters,
                        "counter")) {}

void Counter::add(std::uint64_t n) const {
  if (!enabled()) return;
  Shard& s = local_shard();
  s.bump(s.counters[id_], n);
}

SpanCategory::SpanCategory(const char* name)
    : id_(register_name(Registry::get().span_names, Registry::get().span_ids,
                        name, kMaxSpans, "span")) {}

Span::Span(const SpanCategory& category) {
  if (!enabled()) return;
  id_ = category.id();
  start_ns_ = now_ns();
  active_ = true;
  if (JobTrace* t = t_job_trace) {
    // Record at OPEN so parents precede children in seq order; the
    // duration is filled at close.
    trace_index_ = static_cast<std::int32_t>(t->records.size());
    t->records.push_back({id_, t->next_seq++, t->depth++, 0});
  }
}

Span::~Span() {
  if (!active_) return;
  const std::uint64_t end = now_ns();
  Shard& s = local_shard();
  s.bump(s.span_count[id_], 1);
  s.bump(s.span_ns[id_], end - start_ns_);
  std::uint64_t job = 0;
  if (trace_index_ >= 0) {
    if (JobTrace* t = t_job_trace) {
      t->records[static_cast<std::size_t>(trace_index_)].dur_ns =
          end - start_ns_;
      if (t->depth > 0) --t->depth;
      job = t->job_id;
    }
  }
  if (g_capture.load(std::memory_order_relaxed)) {
    local_events().events.push_back({id_, s.tid, start_ns_, end, job});
  }
}

ScopedJobTrace::ScopedJobTrace(JobTrace* trace) : prev_(t_job_trace) {
  t_job_trace = trace;
}

ScopedJobTrace::~ScopedJobTrace() { t_job_trace = prev_; }

JobTrace* current_job_trace() { return t_job_trace; }

void job_trace_event(const SpanCategory& category, std::uint64_t dur_ns) {
  if (!enabled()) return;
  JobTrace* t = t_job_trace;
  if (t == nullptr) return;
  t->records.push_back({category.id(), t->next_seq++, t->depth, dur_ns});
}

std::vector<CounterValue> counter_snapshot() {
  Registry& r = Registry::get();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<CounterValue> out(r.counter_names.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].name = r.counter_names[i];
    out[i].value = r.retired_counters[i];
  }
  for (const Shard* s : r.shards) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i].value += s->counters[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::vector<SpanStat> span_snapshot() {
  Registry& r = Registry::get();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<SpanStat> out(r.span_names.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].name = r.span_names[i];
    out[i].count = r.retired_span_count[i];
    out[i].total_ns = r.retired_span_ns[i];
  }
  for (const Shard* s : r.shards) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i].count += s->span_count[i].load(std::memory_order_relaxed);
      out[i].total_ns += s->span_ns[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::vector<std::string> counter_names() {
  Registry& r = Registry::get();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.counter_names;
}

std::vector<std::string> span_names() {
  Registry& r = Registry::get();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.span_names;
}

std::size_t counter_capacity() { return kMaxCounters; }

void read_local_counters(std::uint64_t* out, std::size_t n) {
  Shard& s = local_shard();
  const std::size_t m = n < kMaxCounters ? n : kMaxCounters;
  for (std::size_t i = 0; i < m; ++i) {
    out[i] = s.counters[i].load(std::memory_order_relaxed);
  }
  for (std::size_t i = m; i < n; ++i) out[i] = 0;
}

std::vector<CounterValue> counter_delta(const std::vector<CounterValue>& a,
                                        const std::vector<CounterValue>& b) {
  std::vector<CounterValue> out;
  out.reserve(a.size());
  for (const CounterValue& va : a) {
    std::uint64_t base = 0;
    for (const CounterValue& vb : b) {
      if (vb.name == va.name) {
        base = vb.value;
        break;
      }
    }
    out.push_back({va.name, va.value - base});
  }
  return out;
}

void reset() {
  Registry& r = Registry::get();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::fill(std::begin(r.retired_counters), std::end(r.retired_counters),
            std::uint64_t{0});
  std::fill(std::begin(r.retired_span_count), std::end(r.retired_span_count),
            std::uint64_t{0});
  std::fill(std::begin(r.retired_span_ns), std::end(r.retired_span_ns),
            std::uint64_t{0});
  for (Shard* s : r.shards) {
    for (std::size_t i = 0; i < kMaxCounters; ++i) {
      s->counters[i].store(0, std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < kMaxSpans; ++i) {
      s->span_count[i].store(0, std::memory_order_relaxed);
      s->span_ns[i].store(0, std::memory_order_relaxed);
    }
  }
}

void start_span_capture() {
  g_capture.store(true, std::memory_order_relaxed);
}

void stop_span_capture() {
  g_capture.store(false, std::memory_order_relaxed);
}

bool span_capture_running() {
  return g_capture.load(std::memory_order_relaxed);
}

void clear_span_capture() {
  Registry& r = Registry::get();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.retired_events.clear();
  for (EventBuffer* b : r.event_buffers) b->events.clear();
}

bool write_span_trace(const std::string& path, bool deterministic) {
  std::vector<SpanEvent> events;
  std::vector<std::string> names;
  {
    Registry& r = Registry::get();
    std::lock_guard<std::mutex> lock(r.mutex);
    events = r.retired_events;
    for (const EventBuffer* b : r.event_buffers) {
      events.insert(events.end(), b->events.begin(), b->events.end());
    }
    names = r.span_names;
  }
  if (deterministic) {
    // Strip wall-clock and thread placement; order by (name id, owning job)
    // with the original per-thread sequence collapsed by a stable sort, so
    // the file depends only on WHAT ran, not when or where.  Events that
    // agree on (id, job) serialize to identical rows, so the residual
    // interleaving order cannot leak into the bytes.
    std::stable_sort(events.begin(), events.end(),
                     [](const SpanEvent& a, const SpanEvent& b) {
                       return a.id != b.id ? a.id < b.id : a.job < b.job;
                     });
    for (SpanEvent& e : events) {
      e.tid = 0;
      e.start_ns = 0;
      e.end_ns = 0;
    }
  } else {
    std::stable_sort(events.begin(), events.end(),
                     [](const SpanEvent& a, const SpanEvent& b) {
                       return a.start_ns < b.start_ns;
                     });
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot write %s\n", path.c_str());
    return false;
  }
  // Chrome trace-event "X" (complete) events; ts/dur are microseconds.
  std::fprintf(f, "{\"traceEvents\": [\n");
  const std::uint64_t origin = events.empty() ? 0 : events.front().start_ns;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const SpanEvent& e = events[i];
    const double ts = static_cast<double>(e.start_ns - origin) / 1e3;
    const double dur = static_cast<double>(e.end_ns - e.start_ns) / 1e3;
    if (e.job != 0) {
      std::fprintf(f,
                   "  {\"name\": \"%s\", \"ph\": \"X\", \"pid\": 1, "
                   "\"tid\": %u, \"ts\": %.3f, \"dur\": %.3f, "
                   "\"args\": {\"job\": %llu}}%s\n",
                   e.id < names.size() ? names[e.id].c_str() : "?", e.tid, ts,
                   dur, static_cast<unsigned long long>(e.job),
                   i + 1 < events.size() ? "," : "");
    } else {
      std::fprintf(f,
                   "  {\"name\": \"%s\", \"ph\": \"X\", \"pid\": 1, "
                   "\"tid\": %u, \"ts\": %.3f, \"dur\": %.3f}%s\n",
                   e.id < names.size() ? names[e.id].c_str() : "?", e.tid, ts,
                   dur, i + 1 < events.size() ? "," : "");
    }
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  return true;
}

}  // namespace gnsslna::obs
