// Human-readable rendering of obs snapshots: aligned counter / span tables
// and a unicode convergence sparkline.  Pure formatting — no registry access
// — so tools can render arbitrary snapshots (e.g. deltas).
#pragma once

#include <string>
#include <vector>

#include "obs/obs.h"
#include "obs/trace.h"

namespace gnsslna::obs {

/// Aligned two-column table ("name  value"), zero-valued rows skipped unless
/// include_zeros.  Empty string when there is nothing to show.
std::string format_counter_table(const std::vector<CounterValue>& counters,
                                 bool include_zeros = false);

/// Aligned table of span name / count / total ms / mean µs, zero-count rows
/// skipped.
std::string format_span_table(const std::vector<SpanStat>& spans);

/// One-line unicode sparkline (▁▂▃▄▅▆▇█) of the values, min-max scaled.
/// NaNs render as spaces.  Empty input yields an empty string.
std::string sparkline(const std::vector<double>& values);

/// Extracts one numeric column from a trace for sparklining / reporting.
std::vector<double> trace_column_best(const std::vector<TraceRecord>& records);
std::vector<double> trace_column_attainment(
    const std::vector<TraceRecord>& records);

}  // namespace gnsslna::obs
