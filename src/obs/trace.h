// Per-iteration optimizer convergence telemetry.
//
// Every optimizer whose options derive from optimize::CommonOptions emits
// one TraceRecord per generation / iteration / polish stage through an
// optional TraceSink callback.  Emission always happens on the CALLING
// thread at synchronization points (generation barriers, stage ends), and
// every field is a pure function of the optimizer state there — so a
// captured trace is bit-identical for any thread count, exactly like the
// optimizer result itself (tests/test_obs.cpp pins this for the design
// run).  Attaching a sink never changes the optimization: no extra RNG
// draws, no change to counted evaluations.
//
// This machinery is independent of the GNSSLNA_OBS compile switch: a trace
// costs one branch per generation when no sink is attached.
#pragma once

#include <cstddef>
#include <functional>
#include <limits>
#include <string>
#include <vector>

namespace gnsslna::obs {

struct TraceRecord {
  /// Optimizer stage: "de", "pso", "sa", "nsga2", "de_seed", "polish",
  /// "final".
  std::string phase;
  std::size_t stream = 0;      ///< restart / chain index (SA restarts)
  std::size_t iteration = 0;   ///< generation / iteration / stage, 0-based
  std::size_t evaluations = 0; ///< cumulative objective evaluations so far
  double best_value = std::numeric_limits<double>::quiet_NaN();
  double attainment = std::numeric_limits<double>::quiet_NaN();
  std::size_t front_size = 0;  ///< non-dominated front size (multi-objective)
  double hypervolume = std::numeric_limits<double>::quiet_NaN();
};

using TraceSink = std::function<void(const TraceRecord&)>;

/// Collects TraceRecords and writes them as CSV (one row per record,
/// %.17g doubles so the file round-trips bit-exactly).  Not thread-safe:
/// optimizers emit on the calling thread, which is the contract.
class ConvergenceTrace {
 public:
  void record(const TraceRecord& r) { records_.push_back(r); }

  /// A sink bound to this collector (keep the collector alive).
  TraceSink sink() {
    return [this](const TraceRecord& r) { record(r); };
  }

  const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

  /// phase,stream,iteration,evaluations,best_value,attainment,front_size,
  /// hypervolume — with a header row.  Returns false on I/O error.
  bool write_csv(const std::string& path) const;

  /// The same rows as a CSV-formatted string (shared by write_csv and the
  /// bit-identity tests).
  std::string to_csv() const;

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace gnsslna::obs
