#include "obs/flight.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>

#include "obs/obs.h"

namespace gnsslna::obs {

namespace {

/// Retired events kept after thread exit (newest win).
constexpr std::size_t kMaxRetired = 4 * kFlightRingCapacity;

struct FlightRing;

/// Leaked singleton, same lifetime rationale as the obs.h Registry.
struct FlightRegistry {
  std::mutex mutex;
  std::vector<FlightRing*> rings;
  std::vector<FlightEvent> retired;
  std::atomic<std::uint64_t> next_order{1};

  static FlightRegistry& get() {
    static FlightRegistry* g = new FlightRegistry;  // intentionally leaked
    return *g;
  }
};

struct FlightRing {
  std::mutex mutex;  ///< owner writes, exporters read
  FlightEvent events[kFlightRingCapacity];
  std::uint64_t written = 0;  ///< total appended; ring index = i % capacity

  FlightRing() {
    FlightRegistry& r = FlightRegistry::get();
    const std::lock_guard<std::mutex> lock(r.mutex);
    r.rings.push_back(this);
  }

  ~FlightRing() {
    FlightRegistry& r = FlightRegistry::get();
    const std::lock_guard<std::mutex> lock(r.mutex);
    {
      const std::lock_guard<std::mutex> ring_lock(mutex);
      const std::uint64_t n =
          written < kFlightRingCapacity ? written : kFlightRingCapacity;
      for (std::uint64_t i = written - n; i < written; ++i) {
        r.retired.push_back(events[i % kFlightRingCapacity]);
      }
    }
    if (r.retired.size() > kMaxRetired) {
      r.retired.erase(r.retired.begin(),
                      r.retired.end() - static_cast<std::ptrdiff_t>(kMaxRetired));
    }
    r.rings.erase(std::find(r.rings.begin(), r.rings.end(), this));
  }

  void append(const FlightEvent& e) {
    const std::lock_guard<std::mutex> lock(mutex);
    events[written % kFlightRingCapacity] = e;
    ++written;
  }
};

FlightRing& local_ring() {
  thread_local FlightRing ring;
  return ring;
}

std::vector<FlightEvent> collect() {
  FlightRegistry& r = FlightRegistry::get();
  const std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<FlightEvent> out = r.retired;
  for (FlightRing* ring : r.rings) {
    const std::lock_guard<std::mutex> ring_lock(ring->mutex);
    const std::uint64_t n = ring->written < kFlightRingCapacity
                                ? ring->written
                                : kFlightRingCapacity;
    for (std::uint64_t i = ring->written - n; i < ring->written; ++i) {
      out.push_back(ring->events[i % kFlightRingCapacity]);
    }
  }
  return out;
}

}  // namespace

const char* flight_type_name(FlightType t) {
  switch (t) {
    case FlightType::kAdmit:
      return "admit";
    case FlightType::kStart:
      return "start";
    case FlightType::kComplete:
      return "complete";
    case FlightType::kError:
      return "error";
    case FlightType::kCancel:
      return "cancel";
    case FlightType::kDeadlineMiss:
      return "deadline_miss";
    case FlightType::kReject:
      return "reject";
  }
  return "?";
}

void flight_copy_name(char (&dst)[kFlightNameCapacity], const char* s) {
  std::size_t i = 0;
  for (; s[i] != '\0' && i + 1 < kFlightNameCapacity; ++i) dst[i] = s[i];
  dst[i] = '\0';
}

void flight_record(const FlightEvent& event) {
  if (!enabled()) return;
  FlightEvent e = event;
  e.order = FlightRegistry::get().next_order.fetch_add(
      1, std::memory_order_relaxed);
  local_ring().append(e);
}

std::vector<FlightEvent> flight_snapshot() {
  std::vector<FlightEvent> out = collect();
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.order < b.order;
            });
  return out;
}

std::vector<FlightEvent> flight_for_job(std::uint64_t job_id) {
  std::vector<FlightEvent> all = collect();
  std::vector<FlightEvent> out;
  for (const FlightEvent& e : all) {
    if (e.job_id == job_id) out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.job_seq < b.job_seq;
            });
  return out;
}

void flight_clear() {
  FlightRegistry& r = FlightRegistry::get();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.retired.clear();
  for (FlightRing* ring : r.rings) {
    const std::lock_guard<std::mutex> ring_lock(ring->mutex);
    ring->written = 0;
  }
}

}  // namespace gnsslna::obs
