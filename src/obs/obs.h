// Runtime telemetry: counters and scoped span timers with deterministic,
// near-zero-overhead semantics.
//
// Design rules (see DESIGN.md "Observability"):
//   * Counter-based IDs — counters and span categories get dense ids in
//     first-registration order; snapshots are keyed by NAME, so merged
//     totals never depend on which thread happened to register first.
//   * Thread-local shards — every thread owns a private slot array.
//     Increments are single-writer relaxed atomics (no lock prefix, no
//     contention, TSan-clean); snapshots sum the live shards plus the
//     totals retired by exited threads.  Because counter values are
//     integers and addition is commutative, totals are bit-identical for
//     any thread count whenever the instrumented work itself is
//     deterministic (the numeric/parallel.h contract).
//   * No wall-clock in any value that feeds computation — counters and
//     span COUNTS are deterministic; span DURATIONS are observational
//     diagnostics only and are never fed back into any result.
//   * Compile-time kill switch — building with -DGNSSLNA_OBS=OFF removes
//     every instrumentation macro ((void)0 expansion: zero instructions in
//     the hot paths).  The API below still links so tools compile in both
//     modes; with instrumentation compiled out, snapshots are empty.
//   * Runtime switch — instrumentation compiled in but disabled (the
//     default) costs one relaxed atomic-bool load per site.  Enable with
//     the GNSSLNA_OBS=1 environment variable or obs::set_enabled(true).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gnsslna::obs {

/// True when instrumentation macros are compiled in (GNSSLNA_OBS=ON).
constexpr bool compiled_in() {
#if defined(GNSSLNA_OBS_ENABLED)
  return true;
#else
  return false;
#endif
}

/// Runtime master switch.  Initialized once from the GNSSLNA_OBS
/// environment variable ("1"/"true"/"on" enable); overridable at any time.
bool enabled();
void set_enabled(bool on);

/// Deterministic-output mode.  When on, instrumentation that would record
/// wall-clock durations records zeros at the source (job latencies, queue
/// waits, flight-event durations) and exports zero observational values,
/// so every telemetry artifact is a pure function of WHAT ran — byte-
/// identical across worker counts.  Span shard totals keep real durations
/// (they are observational-only by contract); exporters zero them.
/// Initialized from GNSSLNA_OBS_DETERMINISTIC ("1"/"true"/"on").
bool deterministic();
void set_deterministic(bool on);

/// A named monotonic counter.  Construction registers the name (idempotent:
/// the same name always maps to the same id); add() bumps this thread's
/// shard.  Intended use is through GNSSLNA_OBS_COUNT below, which hides the
/// registration behind a function-local static.
class Counter {
 public:
  explicit Counter(const char* name);
  void add(std::uint64_t n = 1) const;
  std::uint32_t id() const { return id_; }

 private:
  std::uint32_t id_;
};

/// A named span category (one per instrumentation site).
class SpanCategory {
 public:
  explicit SpanCategory(const char* name);
  std::uint32_t id() const { return id_; }

 private:
  std::uint32_t id_;
};

/// Scoped RAII timer: on destruction adds {count += 1, total_ns += dur}
/// to this thread's shard and, while span capture is running, appends one
/// flame-trace event.  Inert (two relaxed loads) when obs is disabled.
class Span {
 public:
  explicit Span(const SpanCategory& category);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  std::uint32_t id_ = 0;
  std::uint64_t start_ns_ = 0;
  std::int32_t trace_index_ = -1;  ///< slot in the installed JobTrace
  bool active_ = false;
};

struct CounterValue {
  std::string name;
  std::uint64_t value = 0;
};

struct SpanStat {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;  ///< observational; excluded from determinism
};

/// Totals in id (= first registration) order.  Zero-valued entries are
/// included so snapshot layouts are stable.
std::vector<CounterValue> counter_snapshot();
std::vector<SpanStat> span_snapshot();

/// Registered names in id order (index == id).  Ids are assigned in
/// first-registration order and therefore process-dependent; anything
/// exported for comparison must be keyed by NAME.
std::vector<std::string> counter_names();
std::vector<std::string> span_names();

/// Fixed shard slot count (kMaxCounters): the valid id range for the
/// local-shard reads below and for FlightEvent counter-delta ids.
std::size_t counter_capacity();

/// Copies the CALLING thread's shard values for ids [0, n) into out.
/// Jobs run serial inside (service contract), so a before/after pair of
/// these reads yields the exact counter work of one job.
void read_local_counters(std::uint64_t* out, std::size_t n);

/// Difference a - b by name (names missing from b count from zero).  Order
/// follows a.
std::vector<CounterValue> counter_delta(const std::vector<CounterValue>& a,
                                        const std::vector<CounterValue>& b);

/// Zeroes every live shard and the retired totals.  Must not run
/// concurrently with instrumented work (tests and tools only).
void reset();

// --- Per-job trace context -------------------------------------------------
// The service scheduler installs a JobTrace on the worker thread for the
// duration of one job (jobs run serial inside, so every span the job's body
// opens lands on this thread).  While installed, each Span additionally
// appends one record at construction — (span id, per-job sequence, nesting
// depth) — and fills the duration at destruction, and span-capture events
// are tagged with the owning job id.  Records are in open order with
// explicit depth, so the caller can rebuild the span tree; sequence and
// depth depend only on WHAT the job ran, never on scheduling, which is what
// makes exported trees byte-identical across worker counts.

struct JobTrace {
  struct Record {
    std::uint32_t span_id = 0;   ///< SpanCategory id (resolve via span_names)
    std::uint32_t seq = 0;       ///< per-job open order
    std::uint16_t depth = 0;     ///< nesting depth at open (0 = top level)
    std::uint64_t dur_ns = 0;    ///< observational; zeroed by deterministic
                                 ///  exporters (0 while the span is open)
  };

  explicit JobTrace(std::uint64_t id) : job_id(id) {}

  std::uint64_t job_id = 0;
  std::vector<Record> records;   ///< open (= seq) order
  std::uint32_t next_seq = 0;
  std::uint16_t depth = 0;
};

/// Installs `trace` as the calling thread's active job trace (restores the
/// previous one on destruction).  The trace must outlive the scope.
class ScopedJobTrace {
 public:
  explicit ScopedJobTrace(JobTrace* trace);
  ~ScopedJobTrace();

  ScopedJobTrace(const ScopedJobTrace&) = delete;
  ScopedJobTrace& operator=(const ScopedJobTrace&) = delete;

 private:
  JobTrace* prev_;
};

/// The calling thread's active job trace; nullptr outside any job.
JobTrace* current_job_trace();

/// Appends one leaf record (no nesting change) to the active job trace —
/// for point events like optimizer generation barriers and for synthetic
/// phases whose duration was measured elsewhere (queue wait).  No-op when
/// obs is disabled or no trace is installed.
void job_trace_event(const SpanCategory& category, std::uint64_t dur_ns);

// --- Flame-style span capture ---------------------------------------------
// While capture is running every Span records a begin/end event into a
// thread-local buffer.  write_span_trace() merges the buffers and writes a
// Chrome trace-event JSON ("chrome://tracing" / Perfetto loadable).  Event
// timestamps are wall-clock and therefore observational; pass
// deterministic = true to zero them (events then sort by name + sequence),
// which makes the file diffable across runs and thread counts.
void start_span_capture();
void stop_span_capture();
bool span_capture_running();

/// Writes the captured events; returns false on I/O error.  Capture keeps
/// running (stop it explicitly if desired).
bool write_span_trace(const std::string& path, bool deterministic = false);

/// Drops all captured events.
void clear_span_capture();

}  // namespace gnsslna::obs

// --- Instrumentation macros ------------------------------------------------
// The only way hot-path code should touch obs.  With GNSSLNA_OBS=OFF these
// expand to nothing at all.
#if defined(GNSSLNA_OBS_ENABLED)

#define GNSSLNA_OBS_CONCAT_IMPL(a, b) a##b
#define GNSSLNA_OBS_CONCAT(a, b) GNSSLNA_OBS_CONCAT_IMPL(a, b)

/// Bumps the named counter by 1.
#define GNSSLNA_OBS_COUNT(name)                         \
  do {                                                  \
    static const ::gnsslna::obs::Counter obs_c_{name};  \
    obs_c_.add(1);                                      \
  } while (0)

/// Bumps the named counter by n.
#define GNSSLNA_OBS_COUNT_N(name, n)                    \
  do {                                                  \
    static const ::gnsslna::obs::Counter obs_c_{name};  \
    obs_c_.add(static_cast<std::uint64_t>(n));          \
  } while (0)

/// Times the enclosing scope under the named span category.
#define GNSSLNA_OBS_SPAN(name)                                       \
  static const ::gnsslna::obs::SpanCategory GNSSLNA_OBS_CONCAT(      \
      obs_sc_, __LINE__){name};                                      \
  const ::gnsslna::obs::Span GNSSLNA_OBS_CONCAT(obs_span_, __LINE__)(\
      GNSSLNA_OBS_CONCAT(obs_sc_, __LINE__))

#else  // instrumentation compiled out

#define GNSSLNA_OBS_COUNT(name) ((void)0)
#define GNSSLNA_OBS_COUNT_N(name, n) ((void)0)
#define GNSSLNA_OBS_SPAN(name) ((void)0)

#endif
