// Runtime telemetry: counters and scoped span timers with deterministic,
// near-zero-overhead semantics.
//
// Design rules (see DESIGN.md "Observability"):
//   * Counter-based IDs — counters and span categories get dense ids in
//     first-registration order; snapshots are keyed by NAME, so merged
//     totals never depend on which thread happened to register first.
//   * Thread-local shards — every thread owns a private slot array.
//     Increments are single-writer relaxed atomics (no lock prefix, no
//     contention, TSan-clean); snapshots sum the live shards plus the
//     totals retired by exited threads.  Because counter values are
//     integers and addition is commutative, totals are bit-identical for
//     any thread count whenever the instrumented work itself is
//     deterministic (the numeric/parallel.h contract).
//   * No wall-clock in any value that feeds computation — counters and
//     span COUNTS are deterministic; span DURATIONS are observational
//     diagnostics only and are never fed back into any result.
//   * Compile-time kill switch — building with -DGNSSLNA_OBS=OFF removes
//     every instrumentation macro ((void)0 expansion: zero instructions in
//     the hot paths).  The API below still links so tools compile in both
//     modes; with instrumentation compiled out, snapshots are empty.
//   * Runtime switch — instrumentation compiled in but disabled (the
//     default) costs one relaxed atomic-bool load per site.  Enable with
//     the GNSSLNA_OBS=1 environment variable or obs::set_enabled(true).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gnsslna::obs {

/// True when instrumentation macros are compiled in (GNSSLNA_OBS=ON).
constexpr bool compiled_in() {
#if defined(GNSSLNA_OBS_ENABLED)
  return true;
#else
  return false;
#endif
}

/// Runtime master switch.  Initialized once from the GNSSLNA_OBS
/// environment variable ("1"/"true"/"on" enable); overridable at any time.
bool enabled();
void set_enabled(bool on);

/// A named monotonic counter.  Construction registers the name (idempotent:
/// the same name always maps to the same id); add() bumps this thread's
/// shard.  Intended use is through GNSSLNA_OBS_COUNT below, which hides the
/// registration behind a function-local static.
class Counter {
 public:
  explicit Counter(const char* name);
  void add(std::uint64_t n = 1) const;
  std::uint32_t id() const { return id_; }

 private:
  std::uint32_t id_;
};

/// A named span category (one per instrumentation site).
class SpanCategory {
 public:
  explicit SpanCategory(const char* name);
  std::uint32_t id() const { return id_; }

 private:
  std::uint32_t id_;
};

/// Scoped RAII timer: on destruction adds {count += 1, total_ns += dur}
/// to this thread's shard and, while span capture is running, appends one
/// flame-trace event.  Inert (two relaxed loads) when obs is disabled.
class Span {
 public:
  explicit Span(const SpanCategory& category);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  std::uint32_t id_ = 0;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

struct CounterValue {
  std::string name;
  std::uint64_t value = 0;
};

struct SpanStat {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;  ///< observational; excluded from determinism
};

/// Totals in id (= first registration) order.  Zero-valued entries are
/// included so snapshot layouts are stable.
std::vector<CounterValue> counter_snapshot();
std::vector<SpanStat> span_snapshot();

/// Difference a - b by name (names missing from b count from zero).  Order
/// follows a.
std::vector<CounterValue> counter_delta(const std::vector<CounterValue>& a,
                                        const std::vector<CounterValue>& b);

/// Zeroes every live shard and the retired totals.  Must not run
/// concurrently with instrumented work (tests and tools only).
void reset();

// --- Flame-style span capture ---------------------------------------------
// While capture is running every Span records a begin/end event into a
// thread-local buffer.  write_span_trace() merges the buffers and writes a
// Chrome trace-event JSON ("chrome://tracing" / Perfetto loadable).  Event
// timestamps are wall-clock and therefore observational; pass
// deterministic = true to zero them (events then sort by name + sequence),
// which makes the file diffable across runs and thread counts.
void start_span_capture();
void stop_span_capture();
bool span_capture_running();

/// Writes the captured events; returns false on I/O error.  Capture keeps
/// running (stop it explicitly if desired).
bool write_span_trace(const std::string& path, bool deterministic = false);

/// Drops all captured events.
void clear_span_capture();

}  // namespace gnsslna::obs

// --- Instrumentation macros ------------------------------------------------
// The only way hot-path code should touch obs.  With GNSSLNA_OBS=OFF these
// expand to nothing at all.
#if defined(GNSSLNA_OBS_ENABLED)

#define GNSSLNA_OBS_CONCAT_IMPL(a, b) a##b
#define GNSSLNA_OBS_CONCAT(a, b) GNSSLNA_OBS_CONCAT_IMPL(a, b)

/// Bumps the named counter by 1.
#define GNSSLNA_OBS_COUNT(name)                         \
  do {                                                  \
    static const ::gnsslna::obs::Counter obs_c_{name};  \
    obs_c_.add(1);                                      \
  } while (0)

/// Bumps the named counter by n.
#define GNSSLNA_OBS_COUNT_N(name, n)                    \
  do {                                                  \
    static const ::gnsslna::obs::Counter obs_c_{name};  \
    obs_c_.add(static_cast<std::uint64_t>(n));          \
  } while (0)

/// Times the enclosing scope under the named span category.
#define GNSSLNA_OBS_SPAN(name)                                       \
  static const ::gnsslna::obs::SpanCategory GNSSLNA_OBS_CONCAT(      \
      obs_sc_, __LINE__){name};                                      \
  const ::gnsslna::obs::Span GNSSLNA_OBS_CONCAT(obs_span_, __LINE__)(\
      GNSSLNA_OBS_CONCAT(obs_sc_, __LINE__))

#else  // instrumentation compiled out

#define GNSSLNA_OBS_COUNT(name) ((void)0)
#define GNSSLNA_OBS_COUNT_N(name, n) ((void)0)
#define GNSSLNA_OBS_SPAN(name) ((void)0)

#endif
