// Metrics registry: gauges and fixed-bucket histograms next to the obs.h
// counters, unified into one snapshot with byte-stable exposition.
//
// Design rules (extend DESIGN.md "Observability"):
//   * Same registration discipline as obs.h — dense ids in first-
//     registration order, fixed capacities that throw when exceeded, and
//     every export keyed (and sorted) by NAME so nothing depends on which
//     thread registered first.
//   * Gauges are process-global atomics (set/add), intended for low-
//     frequency level tracking (queue depth, in-flight jobs, plan-cache
//     residency) — not for hot-path increments (use counters).
//   * Histograms have FIXED ascending bucket upper bounds declared at
//     registration plus an implicit +Inf overflow bucket; observe() is one
//     relaxed fetch_add.  Bounds are part of the exposition, so two
//     processes with the same instrumentation emit the same layout.
//   * Determinism classes — every metric is either STABLE (a pure function
//     of what work ran: job counts, evaluation counts, batched solves) or
//     OBSERVATIONAL (dependent on thread placement or cache warmth:
//     plan-cache hits, re-tabulations, workspace reuse).  The class is
//     derived from the name via a fixed prefix table
//     (metric_is_observational); deterministic exposition zeroes
//     observational values while keeping the full name layout, which is
//     what makes the output byte-identical across worker counts.
//   * Runtime gating — like counters, gauges and histograms record only
//     while obs::enabled(); with instrumentation compiled out callers are
//     expected not to register at all (guard registration behind
//     obs::compiled_in()), so snapshots and exposition are empty.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.h"

namespace gnsslna::obs {

/// A named level (not monotonic).  Construction registers the name
/// (idempotent); set/add are relaxed atomics on a process-global slot.
class Gauge {
 public:
  explicit Gauge(const char* name);
  void set(std::int64_t v) const;
  void add(std::int64_t d) const;
  std::uint32_t id() const { return id_; }

 private:
  std::uint32_t id_;
};

/// A named fixed-bucket histogram.  `upper_bounds` must be strictly
/// ascending; an overflow (+Inf) bucket is implicit.  Re-registering a
/// name reuses the first registration's bounds.
class Histogram {
 public:
  Histogram(const char* name, std::vector<double> upper_bounds);
  void observe(double value) const;
  std::uint32_t id() const { return id_; }

 private:
  std::uint32_t id_;
};

struct GaugeValue {
  std::string name;
  std::int64_t value = 0;
};

struct HistogramValue {
  std::string name;
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> counts;  ///< size = upper_bounds.size() + 1
  std::uint64_t total = 0;            ///< sum of counts
  std::int64_t sum = 0;               ///< sum of llround(observed values)
};

/// One unified view: every registered counter, gauge, and histogram, each
/// section sorted by name.  Zero-valued entries are included (stable
/// layout).
struct MetricsSnapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
};

MetricsSnapshot metrics_snapshot();

/// Determinism class of a metric name (fixed prefix table — see the file
/// comment).  Observational metrics are zeroed by deterministic exposition
/// and filtered from deterministic flight-recorder counter deltas.
bool metric_is_observational(std::string_view name);

/// Prometheus text exposition (text format 0.0.4): `# TYPE` line plus
/// samples per metric, names prefixed `gnsslna_` with [^a-zA-Z0-9_] mapped
/// to '_'.  Byte-stable: sections and entries follow the snapshot's
/// name-sorted order.  With deterministic = true observational values are
/// zeroed (layout unchanged).
std::string prometheus_text(const MetricsSnapshot& snapshot,
                            bool deterministic);

/// Interpolated quantile (midpoint rule, matching the service layer's
/// log2-histogram percentiles): the q-quantile sample is ranked
/// k = floor(q * total) + 1 and placed at (k - 0.5)/n of its bucket's
/// width.  Returns 0 for an empty histogram; a rank landing in the
/// overflow bucket returns the last finite bound.
double histogram_quantile(const HistogramValue& h, double q);

/// Zeroes every gauge and histogram (registrations persist).  The metrics
/// counterpart of obs::reset(); tests and tools only.
void metrics_reset();

}  // namespace gnsslna::obs
