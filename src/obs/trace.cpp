#include "obs/trace.h"

#include <cmath>
#include <cstdio>

namespace gnsslna::obs {

namespace {

void append_double(std::string& out, double v) {
  char buf[40];
  if (std::isnan(v)) {
    out += "nan";
    return;
  }
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

std::string ConvergenceTrace::to_csv() const {
  std::string out =
      "phase,stream,iteration,evaluations,best_value,attainment,front_size,"
      "hypervolume\n";
  char buf[64];
  for (const TraceRecord& r : records_) {
    out += r.phase;
    std::snprintf(buf, sizeof(buf), ",%zu,%zu,%zu,", r.stream, r.iteration,
                  r.evaluations);
    out += buf;
    append_double(out, r.best_value);
    out += ',';
    append_double(out, r.attainment);
    std::snprintf(buf, sizeof(buf), ",%zu,", r.front_size);
    out += buf;
    append_double(out, r.hypervolume);
    out += '\n';
  }
  return out;
}

bool ConvergenceTrace::write_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot write %s\n", path.c_str());
    return false;
  }
  const std::string csv = to_csv();
  const bool ok = std::fwrite(csv.data(), 1, csv.size(), f) == csv.size();
  std::fclose(f);
  return ok;
}

}  // namespace gnsslna::obs
