#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace gnsslna::obs {

namespace {

constexpr std::size_t kMaxGauges = 64;
constexpr std::size_t kMaxHistograms = 32;
constexpr std::size_t kMaxBuckets = 64;

struct HistogramSlot {
  std::vector<double> upper_bounds;
  // counts[i] covers (bounds[i-1], bounds[i]]; the last slot is +Inf.
  std::atomic<std::uint64_t> counts[kMaxBuckets + 1] = {};
  std::atomic<std::int64_t> sum{0};
};

/// Leaked singleton, same lifetime rationale as the obs.h Registry.
struct MetricsRegistry {
  std::mutex mutex;

  std::vector<std::string> gauge_names;
  std::unordered_map<std::string, std::uint32_t> gauge_ids;
  std::atomic<std::int64_t> gauge_values[kMaxGauges] = {};

  std::vector<std::string> histogram_names;
  std::unordered_map<std::string, std::uint32_t> histogram_ids;
  HistogramSlot histograms[kMaxHistograms];

  static MetricsRegistry& get() {
    static MetricsRegistry* g = new MetricsRegistry;  // intentionally leaked
    return *g;
  }
};

/// Fixed determinism classification (see metrics.h).  Everything not
/// matched here is STABLE: a pure function of the work that ran.
constexpr const char* kObservationalPrefixes[] = {
    "service.plan_cache.",           // lease hit/miss depends on interleaving
    "circuit.plan.",                 // re-tabulation depends on lease warmth
    "circuit.batch.workspace_reuses",  // per-thread workspace reuse
    "circuit.batch.arena_bytes_hwm",   // summed per-thread high-water marks
    "amplifier.report_cache.",       // per-thread memo hit pattern
    "yield.plan_builds",             // one build per WORKER, not per sample
    "yield.resyncs",                 // per-worker re-binds
};

std::string sanitize(const std::string& name) {
  std::string out = "gnsslna_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void append_bound(std::string* out, double v) {
  char buf[64];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%g", v);
  }
  out->append(buf);
}

void append_u64(std::string* out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out->append(buf);
}

void append_i64(std::string* out, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out->append(buf);
}

}  // namespace

Gauge::Gauge(const char* name) : id_(0) {
  MetricsRegistry& r = MetricsRegistry::get();
  const std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.gauge_ids.find(name);
  if (it != r.gauge_ids.end()) {
    id_ = it->second;
    return;
  }
  if (r.gauge_names.size() >= kMaxGauges) {
    throw std::length_error(
        "obs: too many gauge registrations (raise kMaxGauges)");
  }
  id_ = static_cast<std::uint32_t>(r.gauge_names.size());
  r.gauge_names.emplace_back(name);
  r.gauge_ids.emplace(name, id_);
}

void Gauge::set(std::int64_t v) const {
  if (!enabled()) return;
  MetricsRegistry::get().gauge_values[id_].store(v, std::memory_order_relaxed);
}

void Gauge::add(std::int64_t d) const {
  if (!enabled()) return;
  MetricsRegistry::get().gauge_values[id_].fetch_add(d,
                                                     std::memory_order_relaxed);
}

Histogram::Histogram(const char* name, std::vector<double> upper_bounds)
    : id_(0) {
  if (upper_bounds.empty() || upper_bounds.size() > kMaxBuckets ||
      !std::is_sorted(upper_bounds.begin(), upper_bounds.end())) {
    throw std::invalid_argument(
        "obs: histogram bounds must be ascending, 1..kMaxBuckets long");
  }
  MetricsRegistry& r = MetricsRegistry::get();
  const std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.histogram_ids.find(name);
  if (it != r.histogram_ids.end()) {
    id_ = it->second;
    return;
  }
  if (r.histogram_names.size() >= kMaxHistograms) {
    throw std::length_error(
        "obs: too many histogram registrations (raise kMaxHistograms)");
  }
  id_ = static_cast<std::uint32_t>(r.histogram_names.size());
  r.histogram_names.emplace_back(name);
  r.histogram_ids.emplace(name, id_);
  r.histograms[id_].upper_bounds = std::move(upper_bounds);
}

void Histogram::observe(double value) const {
  if (!enabled()) return;
  HistogramSlot& slot = MetricsRegistry::get().histograms[id_];
  // Prometheus bucket semantics: counts[i] is the first bound >= value.
  const auto it = std::lower_bound(slot.upper_bounds.begin(),
                                   slot.upper_bounds.end(), value);
  const std::size_t b =
      static_cast<std::size_t>(it - slot.upper_bounds.begin());
  slot.counts[b].fetch_add(1, std::memory_order_relaxed);
  slot.sum.fetch_add(std::llround(value), std::memory_order_relaxed);
}

MetricsSnapshot metrics_snapshot() {
  MetricsSnapshot out;
  out.counters = counter_snapshot();
  std::sort(out.counters.begin(), out.counters.end(),
            [](const CounterValue& a, const CounterValue& b) {
              return a.name < b.name;
            });

  MetricsRegistry& r = MetricsRegistry::get();
  const std::lock_guard<std::mutex> lock(r.mutex);
  out.gauges.reserve(r.gauge_names.size());
  for (std::size_t i = 0; i < r.gauge_names.size(); ++i) {
    out.gauges.push_back(
        {r.gauge_names[i],
         r.gauge_values[i].load(std::memory_order_relaxed)});
  }
  std::sort(out.gauges.begin(), out.gauges.end(),
            [](const GaugeValue& a, const GaugeValue& b) {
              return a.name < b.name;
            });

  out.histograms.reserve(r.histogram_names.size());
  for (std::size_t i = 0; i < r.histogram_names.size(); ++i) {
    const HistogramSlot& slot = r.histograms[i];
    HistogramValue h;
    h.name = r.histogram_names[i];
    h.upper_bounds = slot.upper_bounds;
    h.counts.resize(slot.upper_bounds.size() + 1);
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      h.counts[b] = slot.counts[b].load(std::memory_order_relaxed);
      h.total += h.counts[b];
    }
    h.sum = slot.sum.load(std::memory_order_relaxed);
    out.histograms.push_back(std::move(h));
  }
  std::sort(out.histograms.begin(), out.histograms.end(),
            [](const HistogramValue& a, const HistogramValue& b) {
              return a.name < b.name;
            });
  return out;
}

bool metric_is_observational(std::string_view name) {
  for (const char* prefix : kObservationalPrefixes) {
    if (name.substr(0, std::string_view(prefix).size()) == prefix) {
      return true;
    }
  }
  return false;
}

std::string prometheus_text(const MetricsSnapshot& snapshot,
                            bool deterministic) {
  std::string out;
  for (const CounterValue& c : snapshot.counters) {
    const std::string p = sanitize(c.name);
    const std::uint64_t v =
        deterministic && metric_is_observational(c.name) ? 0 : c.value;
    out += "# TYPE " + p + " counter\n" + p + " ";
    append_u64(&out, v);
    out += "\n";
  }
  for (const GaugeValue& g : snapshot.gauges) {
    const std::string p = sanitize(g.name);
    const std::int64_t v =
        deterministic && metric_is_observational(g.name) ? 0 : g.value;
    out += "# TYPE " + p + " gauge\n" + p + " ";
    append_i64(&out, v);
    out += "\n";
  }
  for (const HistogramValue& h : snapshot.histograms) {
    const std::string p = sanitize(h.name);
    const bool zero = deterministic && metric_is_observational(h.name);
    out += "# TYPE " + p + " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < h.upper_bounds.size(); ++b) {
      cum += zero ? 0 : h.counts[b];
      out += p + "_bucket{le=\"";
      append_bound(&out, h.upper_bounds[b]);
      out += "\"} ";
      append_u64(&out, cum);
      out += "\n";
    }
    cum += zero ? 0 : h.counts[h.upper_bounds.size()];
    out += p + "_bucket{le=\"+Inf\"} ";
    append_u64(&out, cum);
    out += "\n" + p + "_sum ";
    append_i64(&out, zero ? 0 : h.sum);
    out += "\n" + p + "_count ";
    append_u64(&out, cum);
    out += "\n";
  }
  return out;
}

double histogram_quantile(const HistogramValue& h, double q) {
  if (h.total == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  const std::uint64_t k =
      static_cast<std::uint64_t>(q * static_cast<double>(h.total)) + 1;
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < h.counts.size(); ++b) {
    if (h.counts[b] == 0) continue;
    cum += h.counts[b];
    if (cum < k) continue;
    if (b >= h.upper_bounds.size()) {
      return h.upper_bounds.back();  // overflow bucket: last finite bound
    }
    const double lo = b == 0 ? 0.0 : h.upper_bounds[b - 1];
    const double hi = h.upper_bounds[b];
    const double j = static_cast<double>(k - (cum - h.counts[b]));
    return lo + (hi - lo) * (j - 0.5) / static_cast<double>(h.counts[b]);
  }
  return h.upper_bounds.back();
}

void metrics_reset() {
  MetricsRegistry& r = MetricsRegistry::get();
  const std::lock_guard<std::mutex> lock(r.mutex);
  for (std::size_t i = 0; i < kMaxGauges; ++i) {
    r.gauge_values[i].store(0, std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < kMaxHistograms; ++i) {
    for (std::size_t b = 0; b <= kMaxBuckets; ++b) {
      r.histograms[i].counts[b].store(0, std::memory_order_relaxed);
    }
    r.histograms[i].sum.store(0, std::memory_order_relaxed);
  }
}

}  // namespace gnsslna::obs
