#include "obs/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace gnsslna::obs {

namespace {

std::size_t name_width(const std::vector<std::string>& names) {
  std::size_t w = 0;
  for (const std::string& n : names) w = std::max(w, n.size());
  return w;
}

}  // namespace

std::string format_counter_table(const std::vector<CounterValue>& counters,
                                 bool include_zeros) {
  std::vector<std::string> names;
  for (const CounterValue& c : counters) {
    if (c.value != 0 || include_zeros) names.push_back(c.name);
  }
  const std::size_t w = name_width(names);
  std::string out;
  char buf[128];
  for (const CounterValue& c : counters) {
    if (c.value == 0 && !include_zeros) continue;
    std::snprintf(buf, sizeof(buf), "  %-*s %12llu\n", static_cast<int>(w),
                  c.name.c_str(), static_cast<unsigned long long>(c.value));
    out += buf;
  }
  return out;
}

std::string format_span_table(const std::vector<SpanStat>& spans) {
  std::vector<std::string> names;
  for (const SpanStat& s : spans) {
    if (s.count != 0) names.push_back(s.name);
  }
  const std::size_t w = std::max<std::size_t>(name_width(names), 4);
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "  %-*s %10s %12s %12s\n",
                static_cast<int>(w), "span", "count", "total ms", "mean us");
  out += buf;
  for (const SpanStat& s : spans) {
    if (s.count == 0) continue;
    const double total_ms = static_cast<double>(s.total_ns) / 1e6;
    const double mean_us =
        static_cast<double>(s.total_ns) / 1e3 / static_cast<double>(s.count);
    std::snprintf(buf, sizeof(buf), "  %-*s %10llu %12.3f %12.3f\n",
                  static_cast<int>(w), s.name.c_str(),
                  static_cast<unsigned long long>(s.count), total_ms, mean_us);
    out += buf;
  }
  return out;
}

std::string sparkline(const std::vector<double>& values) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double v : values) {
    if (std::isnan(v)) continue;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string out;
  if (!(lo <= hi)) return out;  // all NaN or empty
  const double span = hi - lo;
  for (double v : values) {
    if (std::isnan(v)) {
      out += ' ';
      continue;
    }
    int level = 0;
    if (span > 0) {
      level = static_cast<int>((v - lo) / span * 7.0 + 0.5);
      level = std::clamp(level, 0, 7);
    }
    out += kLevels[level];
  }
  return out;
}

std::vector<double> trace_column_best(const std::vector<TraceRecord>& records) {
  std::vector<double> out;
  out.reserve(records.size());
  for (const TraceRecord& r : records) out.push_back(r.best_value);
  return out;
}

std::vector<double> trace_column_attainment(
    const std::vector<TraceRecord>& records) {
  std::vector<double> out;
  out.reserve(records.size());
  for (const TraceRecord& r : records) out.push_back(r.attainment);
  return out;
}

}  // namespace gnsslna::obs
