// Flight recorder: a fixed-size per-worker ring buffer of structured
// scheduler events, cheap enough to leave on in production and complete
// enough to diagnose a bad request after the fact without re-running it.
//
// Design rules (extend DESIGN.md "Observability"):
//   * Fixed-size POD events — no heap behind an event: names are truncated
//     into inline char arrays and counter deltas are (id, value) pairs
//     resolved to names only at export.  Recording is one short critical
//     section on the recording thread's own ring mutex (uncontended unless
//     an export is running).
//   * Per-thread rings — each recording thread owns a kFlightRingCapacity
//     ring; when it fills, the oldest events fall off.  Rings retire into
//     the registry on thread exit (newest-kept, bounded), so events
//     survive short-lived transport threads.
//   * Deterministic export — every event carries (job id, per-job seq)
//     assigned by the scheduler from deterministic state.  Exporters sort
//     by (job, seq) and drop the wall-clock fields, which makes the dump
//     a pure function of what was admitted and how it ended — byte-
//     identical across worker counts.  The global `order` stamp exists for
//     live ("what just happened") ordering only.
//   * Gating — flight_record() drops events while !obs::enabled(); with
//     obs compiled out the scheduler never records, so dumps are empty.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gnsslna::obs {

enum class FlightType : std::uint8_t {
  kAdmit = 0,        ///< job accepted into the queue (id assigned)
  kStart,            ///< worker began running the job
  kComplete,         ///< terminal: status ok
  kError,            ///< terminal: job raised an error
  kCancel,           ///< terminal: cancelled (queued or at a barrier)
  kDeadlineMiss,     ///< terminal: deadline exceeded at a barrier
  kReject,           ///< admission refused (queue full; no id assigned)
};

const char* flight_type_name(FlightType t);

constexpr std::size_t kFlightRingCapacity = 256;  ///< events per thread
constexpr std::size_t kFlightMaxDeltas = 24;      ///< counter deltas/event
constexpr std::size_t kFlightNameCapacity = 24;   ///< inline string bytes

struct FlightEvent {
  std::uint64_t order = 0;     ///< global stamp (observational; set by record)
  std::uint64_t job_id = 0;    ///< scheduler job id; 0 for kReject
  std::uint32_t job_seq = 0;   ///< deterministic per-job event index
  FlightType type = FlightType::kAdmit;
  char job_type[kFlightNameCapacity] = {};  ///< truncated, NUL-terminated
  char client[kFlightNameCapacity] = {};
  std::uint64_t duration_us = 0;  ///< terminal events; observational
  std::uint32_t delta_count = 0;
  struct Delta {
    std::uint32_t counter_id = 0;  ///< obs counter id (resolve by name)
    std::uint64_t value = 0;
  };
  Delta deltas[kFlightMaxDeltas] = {};
};

/// Copies truncated `s` into a FlightEvent inline string field.
void flight_copy_name(char (&dst)[kFlightNameCapacity], const char* s);

/// Appends one event to the calling thread's ring (stamping `order`).
/// Dropped while obs is disabled.
void flight_record(const FlightEvent& event);

/// Every retained event (live rings + retired), sorted by `order`.
std::vector<FlightEvent> flight_snapshot();

/// The retained events of one job, sorted by per-job seq.
std::vector<FlightEvent> flight_for_job(std::uint64_t job_id);

/// Drops every retained event (tests and tools).
void flight_clear();

}  // namespace gnsslna::obs
