// AC analyses on a Netlist: S-parameters and noise figure.
//
// S-parameters use the Norton-equivalent port excitation: with every port
// terminated in its z0, driving port k with a shunt current 2/sqrt(z0_k)
// injects exactly a_k = 1; then S_ik = V_i / sqrt(z0_i) - delta_ik.
//
// Noise analysis is the direct transfer-function method over the netlist's
// registered noise-current groups (Hillbrand-Russer correlation-matrix
// formulation specialized to current sources): one LU factorization per
// frequency, one solve per injection, then
//   S_out = sum_groups  H^dagger CSD H
// and F = S_out,total / S_out,source-termination-only.
#pragma once

#include <vector>

#include "circuit/netlist.h"
#include "rf/sweep.h"

namespace gnsslna::circuit {

/// Full N-port S-parameter matrix at one frequency (row i, col j =
/// S_ij, response at port i to excitation at port j).
numeric::ComplexMatrix s_matrix(const Netlist& netlist, double frequency_hz);

/// Two-port convenience (requires exactly 2 ports, equal z0).
rf::SParams s_params(const Netlist& netlist, double frequency_hz);

/// Swept two-port S-parameters.  Frequency points fan out across `threads`
/// (0 = hardware_concurrency, 1 = serial); the sweep is bit-identical for
/// any thread count.
rf::SweepData s_sweep(const Netlist& netlist,
                      const std::vector<double>& frequencies_hz,
                      std::size_t threads = 1);

/// Result of a spot noise analysis.
struct NoiseResult {
  double noise_factor = 1.0;       ///< linear F
  double noise_figure_db = 0.0;    ///< 10 log10 F
  double output_noise_psd = 0.0;   ///< total at output port [V^2/Hz]
  double source_noise_psd = 0.0;   ///< contribution of the source termination
};

/// Noise factor from input port to output port at one frequency.  The
/// source termination's own thermal noise (at t_source_k) defines the
/// reference; all netlist noise groups plus the output termination are
/// summed into the total.
NoiseResult noise_analysis(const Netlist& netlist, std::size_t input_port,
                           std::size_t output_port, double frequency_hz,
                           double t_source_k = rf::kT0);

/// Source-pull noise analysis: like noise_analysis(), but the input port's
/// z0 termination is REPLACED by the complex source impedance z_source
/// (Re z_source > 0 required — the source must be able to deliver noise
/// power).  This is what a lab source-pull tuner does; sweeping z_source
/// and fitting the four noise parameters of the assembled amplifier is the
/// standard extraction (see rf::fit_noise_parameters).
NoiseResult noise_analysis_source_pull(const Netlist& netlist,
                                       std::size_t input_port,
                                       std::size_t output_port,
                                       Complex z_source, double frequency_hz,
                                       double t_source_k = rf::kT0);

/// Swept noise figure [dB].
std::vector<double> noise_figure_sweep(
    const Netlist& netlist, std::size_t input_port, std::size_t output_port,
    const std::vector<double>& frequencies_hz);

/// Voltage transfer from a Thevenin source (V_s behind z0 at `input_port`,
/// all other ports terminated) to the differential node voltage
/// v(plus) - v(minus):  H(f) = (v_plus - v_minus) / V_s.
Complex voltage_transfer(const Netlist& netlist, std::size_t input_port,
                         NodeId plus, NodeId minus, double frequency_hz);

/// Transimpedance from a current injected between (from, to) — with every
/// port terminated — to the voltage at `output_port`'s node:
/// Z_t(f) = v(out) / I_inj.
Complex transimpedance(const Netlist& netlist, NodeId from, NodeId to,
                       std::size_t output_port, double frequency_hz);

}  // namespace gnsslna::circuit
