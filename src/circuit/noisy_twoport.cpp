#include "circuit/noisy_twoport.h"

#include <stdexcept>

#include "rf/units.h"

namespace gnsslna::circuit {

numeric::ComplexMatrix noise_correlation_y(const rf::YParams& y,
                                           const rf::NoiseParams& np) {
  if (np.f_min < 1.0 || np.r_n <= 0.0) {
    throw std::invalid_argument("noise_correlation_y: invalid noise params");
  }
  const Complex y_opt =
      1.0 / rf::z_from_gamma(np.gamma_opt, np.z0);
  const double scale = 4.0 * rf::kBoltzmann * rf::kT0;
  const double rn = np.r_n;
  const Complex off{(np.f_min - 1.0) / 2.0, 0.0};

  numeric::ComplexMatrix ca(2, 2);
  ca(0, 0) = scale * rn;
  ca(0, 1) = scale * (off - rn * std::conj(y_opt));
  ca(1, 0) = scale * (off - rn * y_opt);
  ca(1, 1) = scale * rn * std::norm(y_opt);

  // CY = T CA T^H with T = [[-y11, 1], [-y21, 0]].
  numeric::ComplexMatrix t(2, 2);
  t(0, 0) = -y.y11;
  t(0, 1) = Complex{1.0, 0.0};
  t(1, 0) = -y.y21;
  t(1, 1) = Complex{0.0, 0.0};
  return t * ca * t.adjoint();
}

ElementRef add_noisy_three_terminal(Netlist& netlist, NodeId t1, NodeId t2,
                                    NodeId common, YBlockFn y, NoiseParamsFn np,
                                    std::string label) {
  if (!y || !np) {
    throw std::invalid_argument(
        "add_noisy_three_terminal: null parameter function");
  }
  ElementRef ref;
  ref.element = netlist.add_three_terminal(t1, t2, common, y, label);

  NoiseGroup ng;
  ng.injections = {{t1, common}, {t2, common}};
  ng.csd = [y, np](double f) { return noise_correlation_y(y(f), np(f)); };
  ng.label = label.empty() ? "device-noise" : label + "-noise";
  ref.noise_group = netlist.add_noise_group(std::move(ng));
  return ref;
}

std::function<numeric::ComplexMatrix(double)> passive_twoport_csd(
    YBlockFn y, double temperature_k) {
  return [y = std::move(y), temperature_k](double f) {
    const rf::YParams yp = y(f);
    numeric::ComplexMatrix m(2, 2);
    m(0, 0) = yp.y11;
    m(0, 1) = yp.y12;
    m(1, 0) = yp.y21;
    m(1, 1) = yp.y22;
    // Twiss: CY = 2kT (Y + Y^H); clamp tiny negative diagonal round-off.
    numeric::ComplexMatrix cy = m + m.adjoint();
    cy *= Complex{2.0 * rf::kBoltzmann * temperature_k, 0.0};
    for (std::size_t i = 0; i < 2; ++i) {
      if (cy(i, i).real() < 0.0) cy(i, i) = Complex{0.0, cy(i, i).imag()};
    }
    return cy;
  };
}

ElementRef add_passive_twoport(Netlist& netlist, NodeId t1, NodeId t2,
                               NodeId common, YBlockFn y, double temperature_k,
                               std::string label) {
  if (!y) {
    throw std::invalid_argument("add_passive_twoport: null Y function");
  }
  ElementRef ref;
  ref.element = netlist.add_three_terminal(t1, t2, common, y, label);
  if (temperature_k <= 0.0) return ref;

  NoiseGroup ng;
  ng.injections = {{t1, common}, {t2, common}};
  ng.csd = passive_twoport_csd(y, temperature_k);
  ng.label = label.empty() ? "passive-noise" : label + "-noise";
  ref.noise_group = netlist.add_noise_group(std::move(ng));
  return ref;
}

void rebind_noisy_three_terminal(Netlist& netlist, const ElementRef& ref,
                                 YBlockFn y, NoiseParamsFn np) {
  if (!y || !np) {
    throw std::invalid_argument(
        "rebind_noisy_three_terminal: null parameter function");
  }
  netlist.set_twoport_fn(ref.element, y);
  if (ref.noise_group != kNoNoiseGroup) {
    netlist.set_noise_csd(ref.noise_group, [y = std::move(y),
                                            np = std::move(np)](double f) {
      return noise_correlation_y(y(f), np(f));
    });
  }
}

void rebind_passive_twoport(Netlist& netlist, const ElementRef& ref,
                            YBlockFn y, double temperature_k) {
  if (!y) {
    throw std::invalid_argument("rebind_passive_twoport: null Y function");
  }
  netlist.set_twoport_fn(ref.element, y);
  if (ref.noise_group != kNoNoiseGroup) {
    netlist.set_noise_csd(ref.noise_group,
                          passive_twoport_csd(std::move(y), temperature_k));
  }
}

}  // namespace gnsslna::circuit
