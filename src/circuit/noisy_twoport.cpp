#include "circuit/noisy_twoport.h"

#include <stdexcept>

#include "rf/units.h"

namespace gnsslna::circuit {

numeric::ComplexMatrix noise_correlation_y(const rf::YParams& y,
                                           const rf::NoiseParams& np) {
  if (np.f_min < 1.0 || np.r_n <= 0.0) {
    throw std::invalid_argument("noise_correlation_y: invalid noise params");
  }
  const Complex y_opt =
      1.0 / rf::z_from_gamma(np.gamma_opt, np.z0);
  const double scale = 4.0 * rf::kBoltzmann * rf::kT0;
  const double rn = np.r_n;
  const Complex off{(np.f_min - 1.0) / 2.0, 0.0};

  numeric::ComplexMatrix ca(2, 2);
  ca(0, 0) = scale * rn;
  ca(0, 1) = scale * (off - rn * std::conj(y_opt));
  ca(1, 0) = scale * (off - rn * y_opt);
  ca(1, 1) = scale * rn * std::norm(y_opt);

  // CY = T CA T^H with T = [[-y11, 1], [-y21, 0]].
  numeric::ComplexMatrix t(2, 2);
  t(0, 0) = -y.y11;
  t(0, 1) = Complex{1.0, 0.0};
  t(1, 0) = -y.y21;
  t(1, 1) = Complex{0.0, 0.0};
  return t * ca * t.adjoint();
}

void noise_correlation_y_into(const rf::YParams& y, const rf::NoiseParams& np,
                              Complex out[4]) {
  if (np.f_min < 1.0 || np.r_n <= 0.0) {
    throw std::invalid_argument("noise_correlation_y: invalid noise params");
  }
  const Complex y_opt = 1.0 / rf::z_from_gamma(np.gamma_opt, np.z0);
  const double scale = 4.0 * rf::kBoltzmann * rf::kT0;
  const double rn = np.r_n;
  const Complex off{(np.f_min - 1.0) / 2.0, 0.0};

  Complex ca[2][2];
  ca[0][0] = scale * rn;
  ca[0][1] = scale * (off - rn * std::conj(y_opt));
  ca[1][0] = scale * (off - rn * y_opt);
  ca[1][1] = scale * rn * std::norm(y_opt);

  const Complex t[2][2] = {{-y.y11, Complex{1.0, 0.0}},
                           {-y.y21, Complex{0.0, 0.0}}};

  // p = t * ca, then out = p * t^H, replaying Matrix::operator* exactly:
  // zero-initialized accumulators, k-outer term order, and the skip of
  // exactly-zero left factors.
  Complex p[2][2] = {};
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t k = 0; k < 2; ++k) {
      const Complex aik = t[i][k];
      if (aik == Complex{}) continue;
      for (std::size_t j = 0; j < 2; ++j) p[i][j] += aik * ca[k][j];
    }
  }
  Complex r[2][2] = {};
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t k = 0; k < 2; ++k) {
      const Complex aik = p[i][k];
      if (aik == Complex{}) continue;
      for (std::size_t j = 0; j < 2; ++j) {
        r[i][j] += aik * std::conj(t[j][k]);
      }
    }
  }
  out[0] = r[0][0];
  out[1] = r[0][1];
  out[2] = r[1][0];
  out[3] = r[1][1];
}

void passive_twoport_csd_into(const rf::YParams& yp, double temperature_k,
                              Complex out[4]) {
  const Complex m[2][2] = {{yp.y11, yp.y12}, {yp.y21, yp.y22}};
  Complex cy[2][2];
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      cy[i][j] = m[i][j] + std::conj(m[j][i]);
    }
  }
  const Complex s{2.0 * rf::kBoltzmann * temperature_k, 0.0};
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) cy[i][j] *= s;
  }
  for (std::size_t i = 0; i < 2; ++i) {
    if (cy[i][i].real() < 0.0) cy[i][i] = Complex{0.0, cy[i][i].imag()};
  }
  out[0] = cy[0][0];
  out[1] = cy[0][1];
  out[2] = cy[1][0];
  out[3] = cy[1][1];
}

ElementRef add_noisy_three_terminal(Netlist& netlist, NodeId t1, NodeId t2,
                                    NodeId common, YBlockFn y, NoiseParamsFn np,
                                    std::string label) {
  if (!y || !np) {
    throw std::invalid_argument(
        "add_noisy_three_terminal: null parameter function");
  }
  ElementRef ref;
  ref.element = netlist.add_three_terminal(t1, t2, common, y, label);

  NoiseGroup ng;
  ng.injections = {{t1, common}, {t2, common}};
  ng.csd = [y, np](double f) { return noise_correlation_y(y(f), np(f)); };
  ng.label = label.empty() ? "device-noise" : label + "-noise";
  ref.noise_group = netlist.add_noise_group(std::move(ng));
  return ref;
}

std::function<numeric::ComplexMatrix(double)> passive_twoport_csd(
    YBlockFn y, double temperature_k) {
  return [y = std::move(y), temperature_k](double f) {
    const rf::YParams yp = y(f);
    numeric::ComplexMatrix m(2, 2);
    m(0, 0) = yp.y11;
    m(0, 1) = yp.y12;
    m(1, 0) = yp.y21;
    m(1, 1) = yp.y22;
    // Twiss: CY = 2kT (Y + Y^H); clamp tiny negative diagonal round-off.
    numeric::ComplexMatrix cy = m + m.adjoint();
    cy *= Complex{2.0 * rf::kBoltzmann * temperature_k, 0.0};
    for (std::size_t i = 0; i < 2; ++i) {
      if (cy(i, i).real() < 0.0) cy(i, i) = Complex{0.0, cy(i, i).imag()};
    }
    return cy;
  };
}

ElementRef add_passive_twoport(Netlist& netlist, NodeId t1, NodeId t2,
                               NodeId common, YBlockFn y, double temperature_k,
                               std::string label) {
  if (!y) {
    throw std::invalid_argument("add_passive_twoport: null Y function");
  }
  ElementRef ref;
  ref.element = netlist.add_three_terminal(t1, t2, common, y, label);
  if (temperature_k <= 0.0) return ref;

  NoiseGroup ng;
  ng.injections = {{t1, common}, {t2, common}};
  ng.csd = passive_twoport_csd(y, temperature_k);
  ng.label = label.empty() ? "passive-noise" : label + "-noise";
  ref.noise_group = netlist.add_noise_group(std::move(ng));
  return ref;
}

void rebind_noisy_three_terminal(Netlist& netlist, const ElementRef& ref,
                                 YBlockFn y, NoiseParamsFn np) {
  if (!y || !np) {
    throw std::invalid_argument(
        "rebind_noisy_three_terminal: null parameter function");
  }
  netlist.set_twoport_fn(ref.element, y);
  if (ref.noise_group != kNoNoiseGroup) {
    netlist.set_noise_csd(ref.noise_group, [y = std::move(y),
                                            np = std::move(np)](double f) {
      return noise_correlation_y(y(f), np(f));
    });
  }
}

void rebind_passive_twoport(Netlist& netlist, const ElementRef& ref,
                            YBlockFn y, double temperature_k) {
  if (!y) {
    throw std::invalid_argument("rebind_passive_twoport: null Y function");
  }
  netlist.set_twoport_fn(ref.element, y);
  if (ref.noise_group != kNoNoiseGroup) {
    netlist.set_noise_csd(ref.noise_group,
                          passive_twoport_csd(std::move(y), temperature_k));
  }
}

}  // namespace gnsslna::circuit
