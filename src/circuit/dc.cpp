#include "circuit/dc.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numeric/matrix.h"

namespace gnsslna::circuit {

DcNodeId DcCircuit::add_node() { return node_count_++; }

void DcCircuit::check_node(DcNodeId n, const char* who) const {
  if (n >= node_count_) {
    throw std::invalid_argument(std::string(who) + ": unknown node");
  }
}

void DcCircuit::add_resistor(DcNodeId a, DcNodeId b, double ohms) {
  check_node(a, "DcCircuit::add_resistor");
  check_node(b, "DcCircuit::add_resistor");
  if (ohms <= 0.0) {
    throw std::invalid_argument("DcCircuit::add_resistor: R must be positive");
  }
  if (a == b) {
    throw std::invalid_argument("DcCircuit::add_resistor: same node twice");
  }
  resistors_.push_back({a, b, 1.0 / ohms});
}

std::size_t DcCircuit::add_vsource(DcNodeId p, DcNodeId n, double volts) {
  check_node(p, "DcCircuit::add_vsource");
  check_node(n, "DcCircuit::add_vsource");
  if (p == n) {
    throw std::invalid_argument("DcCircuit::add_vsource: same node twice");
  }
  sources_.push_back({p, n, volts});
  return sources_.size() - 1;
}

void DcCircuit::add_fet(DcNodeId gate, DcNodeId drain, DcNodeId source,
                        const device::FetModel& model) {
  check_node(gate, "DcCircuit::add_fet");
  check_node(drain, "DcCircuit::add_fet");
  check_node(source, "DcCircuit::add_fet");
  if (drain == source) {
    throw std::invalid_argument("DcCircuit::add_fet: drain == source");
  }
  fets_.push_back({gate, drain, source, &model});
}

bool DcCircuit::newton(double vscale, std::vector<double>& x,
                       int max_iterations, double tolerance_a,
                       int& iterations_out) const {
  const std::size_t nn = node_count_ - 1;       // node unknowns
  const std::size_t nb = sources_.size();       // branch unknowns
  const std::size_t dim = nn + nb;
  if (x.size() != dim) x.assign(dim, 0.0);

  const auto vnode = [&](DcNodeId n) {
    return n == kDcGround ? 0.0 : x[n - 1];
  };

  for (int iter = 0; iter < max_iterations; ++iter) {
    numeric::RealMatrix jac(dim, dim);
    std::vector<double> residual(dim, 0.0);

    const auto bump_res = [&](DcNodeId node, double current) {
      if (node != kDcGround) residual[node - 1] += current;
    };
    const auto bump_jac = [&](DcNodeId row, std::size_t col, double g) {
      if (row != kDcGround) jac(row - 1, col) += g;
    };
    const auto col_of = [&](DcNodeId n) { return n - 1; };

    for (const ResistorElem& r : resistors_) {
      const double i = r.conductance * (vnode(r.a) - vnode(r.b));
      bump_res(r.a, i);
      bump_res(r.b, -i);
      if (r.a != kDcGround) {
        bump_jac(r.a, col_of(r.a), r.conductance);
        bump_jac(r.b, col_of(r.a), -r.conductance);
      }
      if (r.b != kDcGround) {
        bump_jac(r.a, col_of(r.b), -r.conductance);
        bump_jac(r.b, col_of(r.b), r.conductance);
      }
    }

    for (std::size_t s = 0; s < nb; ++s) {
      const SourceElem& src = sources_[s];
      const double i_branch = x[nn + s];
      // KCL: branch current leaves p, enters n.
      bump_res(src.p, i_branch);
      bump_res(src.n, -i_branch);
      bump_jac(src.p, nn + s, 1.0);
      bump_jac(src.n, nn + s, -1.0);
      // Branch equation: v(p) - v(n) - V = 0.
      residual[nn + s] = vnode(src.p) - vnode(src.n) - vscale * src.volts;
      if (src.p != kDcGround) jac(nn + s, col_of(src.p)) += 1.0;
      if (src.n != kDcGround) jac(nn + s, col_of(src.n)) -= 1.0;
    }

    for (const FetElem& f : fets_) {
      const double vgs = vnode(f.gate) - vnode(f.source);
      const double vds = vnode(f.drain) - vnode(f.source);
      const device::Conductances c = f.model->conductances(vgs, vds);
      bump_res(f.drain, c.ids);
      bump_res(f.source, -c.ids);
      const double gm = c.gm;
      const double gds = c.gds;
      if (f.gate != kDcGround) {
        bump_jac(f.drain, col_of(f.gate), gm);
        bump_jac(f.source, col_of(f.gate), -gm);
      }
      if (f.drain != kDcGround) {
        bump_jac(f.drain, col_of(f.drain), gds);
        bump_jac(f.source, col_of(f.drain), -gds);
      }
      if (f.source != kDcGround) {
        bump_jac(f.drain, col_of(f.source), -(gm + gds));
        bump_jac(f.source, col_of(f.source), gm + gds);
      }
    }

    double norm = 0.0;
    for (const double r : residual) norm = std::max(norm, std::abs(r));
    if (norm < tolerance_a) {
      iterations_out = iter;
      return true;
    }

    // Tiny diagonal regularization keeps floating subcircuits solvable.
    for (std::size_t i = 0; i < nn; ++i) jac(i, i) += 1e-12;

    std::vector<double> dx;
    try {
      dx = numeric::solve(jac, residual);
    } catch (const std::domain_error&) {
      return false;
    }

    // Damped update: limit voltage steps to 0.5 V per iteration for the
    // strongly nonlinear tanh models.
    double dmax = 0.0;
    for (std::size_t i = 0; i < nn; ++i) dmax = std::max(dmax, std::abs(dx[i]));
    const double damp = dmax > 0.5 ? 0.5 / dmax : 1.0;
    for (std::size_t i = 0; i < dim; ++i) x[i] -= damp * dx[i];
  }
  return false;
}

DcSolution DcCircuit::solve(double tolerance_a, int max_iterations) const {
  const std::size_t nn = node_count_ - 1;
  const std::size_t nb = sources_.size();

  DcSolution sol;
  std::vector<double> x(nn + nb, 0.0);
  int iters = 0;
  if (newton(1.0, x, max_iterations, tolerance_a, iters)) {
    sol.newton_iterations = iters;
  } else {
    // Source stepping: ramp all sources from 0 to full value.
    x.assign(nn + nb, 0.0);
    sol.used_source_stepping = true;
    int total = 0;
    for (int step = 1; step <= 20; ++step) {
      const double scale = static_cast<double>(step) / 20.0;
      if (!newton(scale, x, max_iterations, tolerance_a, iters)) {
        throw std::runtime_error(
            "DcCircuit::solve: source stepping failed to converge");
      }
      total += iters;
    }
    sol.newton_iterations = total;
  }

  sol.node_voltages.assign(node_count_, 0.0);
  for (std::size_t i = 0; i < nn; ++i) sol.node_voltages[i + 1] = x[i];
  sol.source_currents.assign(nb, 0.0);
  for (std::size_t s = 0; s < nb; ++s) sol.source_currents[s] = x[nn + s];
  return sol;
}

double DcCircuit::fet_drain_current(std::size_t index,
                                    const DcSolution& sol) const {
  if (index >= fets_.size()) {
    throw std::out_of_range("DcCircuit::fet_drain_current: bad index");
  }
  const FetElem& f = fets_[index];
  const double vgs = sol.voltage(f.gate) - sol.voltage(f.source);
  const double vds = sol.voltage(f.drain) - sol.voltage(f.source);
  return f.model->drain_current(vgs, vds);
}

}  // namespace gnsslna::circuit
