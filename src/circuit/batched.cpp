// Frequency-batched evaluation kernels.
//
// NOTE ON ARITHMETIC: this file re-implements complex multiply/divide on
// raw re/im doubles so the lane loops vectorize.  The naive forms used
// here are bit-identical to what the scalar path produces through
// std::complex (libgcc's __muldc3 fast path, and numeric::scalar_inverse)
// for the finite, non-NaN values circuit analysis produces.  This file is
// compiled with -ffp-contract=off (see src/circuit/CMakeLists.txt) so
// FMA-capable -march=native builds cannot contract a*b-c*d expressions
// into fused forms the scalar path does not use.
#include "circuit/batched.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numeric/matrix.h"
#include "obs/obs.h"
#include "rf/units.h"

namespace gnsslna::circuit {

// The lane loops below are plain IEEE mul/add/sub streams, so running them
// through wider SIMD units changes nothing about the results — packed
// double arithmetic is correctly rounded exactly like scalar, and
// -ffp-contract=off keeps FMA contraction off in every clone.  Function
// multiversioning therefore lets the default (bit-portable, baseline
// x86-64) build use AVX2/AVX-512 lanes when the host has them, dispatched
// once at load time, with bit-identical output on every path.
//
// ThreadSanitizer is excluded: GCC's target_clones IFUNC resolvers run
// before the TSan runtime is initialized and segfault at load time (a
// 3-line reproducer crashes identically).  Dispatch never changes
// results, so the TSan build just runs the baseline clone.
#if defined(__x86_64__) && defined(__ELF__) && defined(__GNUC__) && \
    !defined(__SANITIZE_THREAD__)
#define GNSSLNA_BATCHED_CLONES \
  __attribute__((target_clones("default", "avx2", "avx512f")))
#else
#define GNSSLNA_BATCHED_CLONES
#endif

// ---------------------------------------------------------------------------
// Construction and tabulation (mirrors CompiledNetlist)

BatchedPlan::BatchedPlan(const Netlist& netlist, std::vector<double> grid_hz)
    : grid_(std::move(grid_hz)) {
  for (const double f : grid_) {
    if (f <= 0.0) {
      throw std::invalid_argument("BatchedPlan: grid frequencies must be > 0");
    }
  }
  ports_ = netlist.ports();
  unknowns_ = netlist.node_count() - 1;

  stamps_.resize(netlist.stamps_.size());
  for (std::size_t si = 0; si < stamps_.size(); ++si) {
    const Netlist::Stamp& st = netlist.stamps_[si];
    StampTable& t = stamps_[si];
    t.frequency_independent = st.frequency_independent;
    // Legacy bump order: (out_p,in_p,+) (out_p,in_n,-) (out_n,in_p,-)
    // (out_n,in_n,+), ground-touching terms skipped.
    const NodeId rows[4] = {st.out_p, st.out_p, st.out_n, st.out_n};
    const NodeId cols[4] = {st.in_p, st.in_n, st.in_p, st.in_n};
    const double signs[4] = {1.0, -1.0, -1.0, 1.0};
    for (int b = 0; b < 4; ++b) {
      if (rows[b] == kGround || cols[b] == kGround) continue;
      t.bumps.push_back({static_cast<std::uint32_t>(rows[b] - 1),
                         static_cast<std::uint32_t>(cols[b] - 1), signs[b]});
    }
    tabulate_stamp(si, netlist);
  }

  twoports_.resize(netlist.twoports_.size());
  for (std::size_t ti = 0; ti < twoports_.size(); ++ti) {
    const Netlist::TwoPortStamp& tp = netlist.twoports_[ti];
    TwoPortTable& t = twoports_[ti];
    // The nine legacy bump() calls of CompiledNetlist::slot_with_lu, in
    // order, with ground-touching terms dropped at compile time.
    const NodeId a = tp.t1, b = tp.t2, c = tp.common;
    const NodeId rows[9] = {a, a, a, b, b, b, c, c, c};
    const NodeId cols[9] = {a, b, c, a, b, c, a, b, c};
    const TpKind kinds[9] = {TpKind::kY11,     TpKind::kY12,
                             TpKind::kNeg1112, TpKind::kY21,
                             TpKind::kY22,     TpKind::kNeg2122,
                             TpKind::kNeg1121, TpKind::kNeg1222,
                             TpKind::kSum};
    for (int k = 0; k < 9; ++k) {
      if (rows[k] == kGround || cols[k] == kGround) continue;
      t.terms.push_back({static_cast<std::uint32_t>(rows[k] - 1),
                         static_cast<std::uint32_t>(cols[k] - 1), kinds[k]});
    }
    tabulate_twoport(ti, netlist);
  }

  noise_.resize(netlist.noise_groups_.size());
  for (std::size_t gi = 0; gi < noise_.size(); ++gi) {
    noise_[gi].injections = netlist.noise_groups_[gi].injections;
    noise_[gi].order = noise_[gi].injections.size();
    tabulate_noise(gi, netlist);
  }
  last_sync_retabulated_ = stamps_.size() + twoports_.size() + noise_.size();

  max_injections_ = 1;
  for (const NoiseTable& g : noise_) {
    max_injections_ = std::max(max_injections_, g.injections.size());
  }
}

void BatchedPlan::tabulate_stamp(std::size_t si, const Netlist& netlist) {
  const Netlist::Stamp& st = netlist.stamps_[si];
  StampTable& t = stamps_[si];
  t.revision = st.revision;
  if (grid_.empty()) return;
  if (t.frequency_independent) {
    t.values.assign(1, st.value(grid_[0]));
    return;
  }
  t.values.resize(grid_.size());
  for (std::size_t k = 0; k < grid_.size(); ++k) {
    t.values[k] = st.value(grid_[k]);
  }
}

void BatchedPlan::tabulate_twoport(std::size_t ti, const Netlist& netlist) {
  const Netlist::TwoPortStamp& tp = netlist.twoports_[ti];
  TwoPortTable& t = twoports_[ti];
  t.revision = tp.revision;
  t.values.resize(grid_.size());
  t.kind_re.resize(9 * grid_.size());
  t.kind_im.resize(9 * grid_.size());
  const TwoPortView v = twoport_view(ti);
  for (std::size_t k = 0; k < grid_.size(); ++k) {
    v.set(k, tp.y(grid_[k]));
  }
}

void BatchedPlan::tabulate_noise(std::size_t gi, const Netlist& netlist) {
  const NoiseGroup& g = netlist.noise_groups_[gi];
  NoiseTable& t = noise_[gi];
  t.revision = g.revision;
  const std::size_t k = t.order;
  t.csd.resize(grid_.size() * k * k);
  for (std::size_t fi = 0; fi < grid_.size(); ++fi) {
    const numeric::ComplexMatrix m = g.csd(grid_[fi]);
    if (m.rows() != k || m.cols() != k) {
      throw std::invalid_argument("noise_analysis: CSD size mismatch in '" +
                                  g.label + "'");
    }
    for (std::size_t r = 0; r < k; ++r) {
      for (std::size_t c = 0; c < k; ++c) {
        t.csd[fi * k * k + r * k + c] = m(r, c);
      }
    }
  }
}

void BatchedPlan::check_structure(const Netlist& netlist) const {
  if (netlist.node_count() - 1 != unknowns_ ||
      netlist.stamps_.size() != stamps_.size() ||
      netlist.twoports_.size() != twoports_.size() ||
      netlist.noise_groups_.size() != noise_.size() ||
      netlist.ports().size() != ports_.size()) {
    throw std::invalid_argument("BatchedPlan::sync: netlist structure changed");
  }
  for (std::size_t p = 0; p < ports_.size(); ++p) {
    if (netlist.ports()[p].node != ports_[p].node ||
        netlist.ports()[p].z0 != ports_[p].z0) {
      throw std::invalid_argument("BatchedPlan::sync: netlist ports changed");
    }
  }
}

void BatchedPlan::sync(const Netlist& netlist) {
  GNSSLNA_OBS_SPAN("circuit.batch.sync");
  check_structure(netlist);
  std::size_t matrix_changes = 0, noise_changes = 0;
  for (std::size_t si = 0; si < stamps_.size(); ++si) {
    if (netlist.stamps_[si].revision != stamps_[si].revision) {
      tabulate_stamp(si, netlist);
      matrix_changes++;
    }
  }
  for (std::size_t ti = 0; ti < twoports_.size(); ++ti) {
    if (netlist.twoports_[ti].revision != twoports_[ti].revision) {
      tabulate_twoport(ti, netlist);
      matrix_changes++;
    }
  }
  for (std::size_t gi = 0; gi < noise_.size(); ++gi) {
    if (netlist.noise_groups_[gi].revision != noise_[gi].revision) {
      tabulate_noise(gi, netlist);
      noise_changes++;
    }
  }
  if (matrix_changes > 0) {
    ++revision_;
  }
  last_sync_retabulated_ = matrix_changes + noise_changes;
}

BatchedPlan::StampView BatchedPlan::stamp_view(std::size_t stamp_index) {
  StampTable& t = stamps_.at(stamp_index);
  return {t.values.data(), t.values.size()};
}

BatchedPlan::TwoPortView BatchedPlan::twoport_view(std::size_t twoport_index) {
  TwoPortTable& t = twoports_.at(twoport_index);
  return {t.values.data(), t.values.size(), t.kind_re.data(),
          t.kind_im.data()};
}

BatchedPlan::NoiseView BatchedPlan::noise_view(std::size_t group_index) {
  NoiseTable& t = noise_.at(group_index);
  return {t.csd.data(), t.order, grid_.size()};
}

// ---------------------------------------------------------------------------
// Workspace binding

void BatchedPlan::bind(EvalWorkspace& ws, std::size_t f_begin,
                       std::size_t f_end) const {
  if (f_begin >= f_end || f_end > grid_.size()) {
    throw std::out_of_range("BatchedPlan: lane range out of range");
  }
  const std::size_t n = unknowns_;
  const std::size_t lanes = f_end - f_begin;
  const bool same_shape = ws.plan_ == this && ws.bound_unknowns_ == n &&
                          ws.lanes_ == lanes &&
                          ws.bound_max_inj_ == max_injections_;
  const bool same_range = same_shape && ws.f_begin_ == f_begin;
  if (!same_range) {
    // Re-carve.  The arena only touches the heap when the required
    // footprint exceeds what previous bindings committed.
    const std::size_t cap_before = ws.arena_.capacity();
    numeric::Arena& a = ws.arena_;
    a.reset();
    ws.a_re_ = a.alloc_array<double>(n * n * lanes);
    ws.a_im_ = a.alloc_array<double>(n * n * lanes);
    ws.dinv_re_ = a.alloc_array<double>(n * lanes);
    ws.dinv_im_ = a.alloc_array<double>(n * lanes);
    ws.perm_ = a.alloc_array<std::uint32_t>(n * lanes);
    ws.pivrow_ = a.alloc_array<std::uint32_t>(lanes);
    ws.pivmag_ = a.alloc_array<double>(lanes);
    ws.work_re_ = a.alloc_array<double>(n * lanes);
    ws.work_im_ = a.alloc_array<double>(n * lanes);
    ws.sol_re_ = a.alloc_array<double>(2 * n * lanes);
    ws.sol_im_ = a.alloc_array<double>(2 * n * lanes);
    ws.w_re_ = a.alloc_array<double>(n * lanes);
    ws.w_im_ = a.alloc_array<double>(n * lanes);
    ws.h_ = a.alloc_array<Complex>(max_injections_);
    ws.nh_re_ = a.alloc_array<double>(max_injections_ * lanes);
    ws.nh_im_ = a.alloc_array<double>(max_injections_ * lanes);
    ws.nacc_ = a.alloc_array<double>(lanes);
    ws.npsd_ = a.alloc_array<double>(lanes);
    ws.plan_ = this;
    ws.bound_unknowns_ = n;
    ws.bound_max_inj_ = max_injections_;
    ws.lanes_ = lanes;
    ws.f_begin_ = f_begin;
    ws.f_end_ = f_end;
    ws.factored_ = false;
    if (ws.arena_.capacity() == cap_before) {
      GNSSLNA_OBS_COUNT("circuit.batch.workspace_reuses");
    }
    if (ws.arena_.high_water() > ws.reported_hwm_) {
      GNSSLNA_OBS_COUNT_N("circuit.batch.arena_bytes_hwm",
                          ws.arena_.high_water() - ws.reported_hwm_);
      ws.reported_hwm_ = ws.arena_.high_water();
    }
  } else {
    GNSSLNA_OBS_COUNT("circuit.batch.workspace_reuses");
  }
}

// ---------------------------------------------------------------------------
// Assembly

GNSSLNA_BATCHED_CLONES
void BatchedPlan::assemble(EvalWorkspace& ws) const {
  const std::size_t n = unknowns_;
  const std::size_t L = ws.lanes_;
  const std::size_t fb = ws.f_begin_;
  const std::size_t G = grid_.size();
  double* const are = ws.a_re_;
  double* const aim = ws.a_im_;
  std::fill_n(are, n * n * L, 0.0);
  std::fill_n(aim, n * n * L, 0.0);

  for (const StampTable& t : stamps_) {
    for (const Bump& b : t.bumps) {
      double* re = are + (b.row * n + b.col) * L;
      double* im = aim + (b.row * n + b.col) * L;
      if (t.frequency_independent) {
        const double vr = t.values[0].real();
        const double vi = t.values[0].imag();
        if (b.sign > 0.0) {
          for (std::size_t l = 0; l < L; ++l) {
            re[l] += vr;
            im[l] += vi;
          }
        } else {
          for (std::size_t l = 0; l < L; ++l) {
            re[l] -= vr;
            im[l] -= vi;
          }
        }
      } else {
        const Complex* v = t.values.data() + fb;
        if (b.sign > 0.0) {
          for (std::size_t l = 0; l < L; ++l) {
            re[l] += v[l].real();
            im[l] += v[l].imag();
          }
        } else {
          for (std::size_t l = 0; l < L; ++l) {
            re[l] -= v[l].real();
            im[l] -= v[l].imag();
          }
        }
      }
    }
  }

  for (const TwoPortTable& t : twoports_) {
    for (const TpTerm& term : t.terms) {
      // The expanded kind rows already hold exactly the complex value the
      // legacy assembly forms for this term (see TwoPortView::set), so the
      // lane loop is a contiguous add just like the stamp path.
      const std::size_t kk = static_cast<std::size_t>(term.kind);
      const double* const vr = t.kind_re.data() + kk * G + fb;
      const double* const vi = t.kind_im.data() + kk * G + fb;
      double* const re = are + (term.row * n + term.col) * L;
      double* const im = aim + (term.row * n + term.col) * L;
      for (std::size_t l = 0; l < L; ++l) {
        re[l] += vr[l];
        im[l] += vi[l];
      }
    }
  }

  for (const Port& p : ports_) {
    const std::size_t base = ((p.node - 1) * n + (p.node - 1)) * L;
    const double g = 1.0 / p.z0;
    for (std::size_t l = 0; l < L; ++l) {
      // Mirror `y += Complex{g, 0.0}`: the imaginary part also receives a
      // +0.0 addition (which normalizes a -0.0 accumulator, as the scalar
      // path's complex addition does).
      are[base + l] += g;
      aim[base + l] += 0.0;
    }
  }
}

// ---------------------------------------------------------------------------
// Blocked LU factorization (replays numeric::LuDecomposition per lane)

namespace {

// LF is a compile-time lane count (0 = use the runtime count).  The band
// evaluator always binds 16-lane workspaces, and a constant trip count
// turns every inner lane loop into straight-line vector code with no
// remainder handling.  The bodies are force-inlined into the cloned
// wrappers below, so each ISA clone compiles them at its own vector
// width; every instantiation performs the identical arithmetic in the
// identical order, so the specialization is invisible in the results.
template <std::size_t LF>
inline __attribute__((always_inline)) void factor_lanes_body(
    const std::size_t n, const std::size_t L_rt, double* const are,
    double* const aim, double* const dre, double* const dim,
    std::uint32_t* const perm, std::uint32_t* const piv, double* const mag) {
  const std::size_t L = LF != 0 ? LF : L_rt;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t l = 0; l < L; ++l) {
      perm[i * L + l] = static_cast<std::uint32_t>(i);
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    // Per-lane partial pivoting with the shared pivot_magnitude rule.
    // Lanes usually agree on the pivot row (the sparsity pattern is
    // frequency-independent and magnitudes vary smoothly), enabling the
    // contiguous whole-vector swap below; disagreeing lanes fall back to
    // per-lane strided swaps.  Either way each lane performs exactly the
    // swaps the scalar factorization would.
    // Lane-innermost scan so the compare/select vectorizes; per lane this
    // is the identical strict-`>` running-max scan in the identical row
    // order, so each lane picks exactly the scalar kernel's pivot.
    for (std::size_t l = 0; l < L; ++l) {
      mag[l] = std::abs(are[(k * n + k) * L + l]) +
               std::abs(aim[(k * n + k) * L + l]);
      piv[l] = static_cast<std::uint32_t>(k);
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      const double* const cr = are + (i * n + k) * L;
      const double* const ci = aim + (i * n + k) * L;
      for (std::size_t l = 0; l < L; ++l) {
        const double m = std::abs(cr[l]) + std::abs(ci[l]);
        const bool better = m > mag[l];
        mag[l] = better ? m : mag[l];
        piv[l] = better ? static_cast<std::uint32_t>(i) : piv[l];
      }
    }
    bool uniform = true;
    for (std::size_t l = 0; l < L; ++l) {
      if (mag[l] == 0.0) {
        throw std::domain_error("LU: matrix is singular");
      }
      if (piv[l] != piv[0]) uniform = false;
    }
    if (uniform) {
      const std::uint32_t p = piv[0];
      if (p != k) {
        for (std::size_t j = 0; j < n; ++j) {
          std::swap_ranges(are + (k * n + j) * L, are + (k * n + j) * L + L,
                           are + (p * n + j) * L);
          std::swap_ranges(aim + (k * n + j) * L, aim + (k * n + j) * L + L,
                           aim + (p * n + j) * L);
        }
        for (std::size_t l = 0; l < L; ++l) {
          std::swap(perm[k * L + l], perm[p * L + l]);
        }
      }
    } else {
      for (std::size_t l = 0; l < L; ++l) {
        const std::uint32_t p = piv[l];
        if (p == k) continue;
        for (std::size_t j = 0; j < n; ++j) {
          std::swap(are[(k * n + j) * L + l], are[(p * n + j) * L + l]);
          std::swap(aim[(k * n + j) * L + l], aim[(p * n + j) * L + l]);
        }
        std::swap(perm[k * L + l], perm[p * L + l]);
      }
    }

    // Stored pivot reciprocal (numeric::scalar_inverse, per lane).
    double* const pr = dre + k * L;
    double* const pi = dim + k * L;
    for (std::size_t l = 0; l < L; ++l) {
      const double zr = are[(k * n + k) * L + l];
      const double zi = aim[(k * n + k) * L + l];
      const double d = zr * zr + zi * zi;
      const double s = 1.0 / d;
      pr[l] = zr * s;
      pi[l] = -zi * s;
    }

    // Column scale and rank-1 update.  The scalar kernel skips row i when
    // l(i,k) == 0; per lane that skip becomes "keep the original value",
    // with an all-lanes-zero early-out for structurally empty entries and
    // a branch-free fast path when every lane is nonzero.
    for (std::size_t i = k + 1; i < n; ++i) {
      double* const lre = are + (i * n + k) * L;
      double* const lim = aim + (i * n + k) * L;
      std::size_t nonzero = 0;
      for (std::size_t l = 0; l < L; ++l) {
        const double a = lre[l];
        const double b = lim[l];
        lre[l] = a * pr[l] - b * pi[l];
        lim[l] = a * pi[l] + b * pr[l];
        if (lre[l] != 0.0 || lim[l] != 0.0) ++nonzero;
      }
      if (nonzero == 0) continue;
      if (nonzero == L) {
        for (std::size_t j = k + 1; j < n; ++j) {
          const double* const ur = are + (k * n + j) * L;
          const double* const ui = aim + (k * n + j) * L;
          double* const tr = are + (i * n + j) * L;
          double* const ti = aim + (i * n + j) * L;
          for (std::size_t l = 0; l < L; ++l) {
            tr[l] -= lre[l] * ur[l] - lim[l] * ui[l];
            ti[l] -= lre[l] * ui[l] + lim[l] * ur[l];
          }
        }
      } else {
        for (std::size_t j = k + 1; j < n; ++j) {
          const double* const ur = are + (k * n + j) * L;
          const double* const ui = aim + (k * n + j) * L;
          double* const tr = are + (i * n + j) * L;
          double* const ti = aim + (i * n + j) * L;
          for (std::size_t l = 0; l < L; ++l) {
            if (lre[l] == 0.0 && lim[l] == 0.0) continue;
            tr[l] -= lre[l] * ur[l] - lim[l] * ui[l];
            ti[l] -= lre[l] * ui[l] + lim[l] * ur[l];
          }
        }
      }
    }
  }
}

GNSSLNA_BATCHED_CLONES
void factor_lanes_kernel(const std::size_t n, const std::size_t L,
                         double* const are, double* const aim,
                         double* const dre, double* const dim,
                         std::uint32_t* const perm, std::uint32_t* const piv,
                         double* const mag) {
  if (L == 16) {
    factor_lanes_body<16>(n, L, are, aim, dre, dim, perm, piv, mag);
  } else {
    factor_lanes_body<0>(n, L, are, aim, dre, dim, perm, piv, mag);
  }
}


}  // namespace

void BatchedPlan::factor_lanes(EvalWorkspace& ws) const {
  factor_lanes_kernel(unknowns_, ws.lanes_, ws.a_re_, ws.a_im_, ws.dinv_re_,
                      ws.dinv_im_, ws.perm_, ws.pivrow_, ws.pivmag_);
}

void BatchedPlan::factor(EvalWorkspace& ws, std::size_t f_begin,
                         std::size_t f_end) const {
  bind(ws, f_begin, f_end);
  if (ws.factored_ && ws.seen_revision_ == revision_) {
    return;
  }
  assemble(ws);
  factor_lanes(ws);
  ws.factored_ = true;
  ws.seen_revision_ = revision_;
  ws.have_ports_ = false;
  ws.have_w_ = false;
}

// ---------------------------------------------------------------------------
// Batched substitutions (replay LuDecomposition::solve_into /
// solve_transposed_into per lane)

namespace {

// Seeding plus forward and back substitution through the packed LU
// factors for the two port right-hand sides (lane-major, L lanes each,
// laid out [rhs * n + row], substituted in place).  The sides advance row
// step by row step in lock-step — each LU row is streamed from cache once
// and applied to both sides in separate lane loops — but within a side
// the operations and their order are exactly those of a standalone
// single-side substitution, so the fusion cannot change a bit of either
// solution.
template <std::size_t LF>
inline __attribute__((always_inline)) void substitute_ports_body(
    const std::size_t n, const std::size_t L_rt,
    const std::uint32_t* const perm, const std::uint32_t src0,
    const std::uint32_t src1, const double v0, const double v1,
    const double* const are, const double* const aim, const double* const dre,
    const double* const dim, double* const xr0, double* const xi0,
    double* const xr1, double* const xi1) {
  const std::size_t L = LF != 0 ? LF : L_rt;
  // Seed both sides in place: x[i] = b[perm[i]] with b = v * e_src.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t l = 0; l < L; ++l) {
      const std::uint32_t pi_ = perm[i * L + l];
      xr0[i * L + l] = pi_ == src0 ? v0 : 0.0;
      xi0[i * L + l] = 0.0;
      xr1[i * L + l] = pi_ == src1 ? v1 : 0.0;
      xi1[i * L + l] = 0.0;
    }
  }
  if constexpr (LF != 0) {
    // The row being reduced is accumulated in compile-time-sized locals
    // (registers once the lane loops unroll) instead of being re-loaded
    // and re-stored through x on every jj step: the compiler cannot
    // prove x[i] and x[jj] never alias, the locals make it structural.
    // The per-lane operations and their order are untouched, so the
    // values are bit-identical to the in-place form below.
    double ar0[LF], ai0[LF], ar1[LF], ai1[LF];
    // Forward substitution with unit-lower L.
    for (std::size_t i = 1; i < n; ++i) {
      for (std::size_t l = 0; l < L; ++l) {
        ar0[l] = xr0[i * L + l];
        ai0[l] = xi0[i * L + l];
        ar1[l] = xr1[i * L + l];
        ai1[l] = xi1[i * L + l];
      }
      for (std::size_t jj = 0; jj < i; ++jj) {
        const double* const lr = are + (i * n + jj) * L;
        const double* const li = aim + (i * n + jj) * L;
        for (std::size_t l = 0; l < L; ++l) {
          ar0[l] -= lr[l] * xr0[jj * L + l] - li[l] * xi0[jj * L + l];
          ai0[l] -= lr[l] * xi0[jj * L + l] + li[l] * xr0[jj * L + l];
        }
        for (std::size_t l = 0; l < L; ++l) {
          ar1[l] -= lr[l] * xr1[jj * L + l] - li[l] * xi1[jj * L + l];
          ai1[l] -= lr[l] * xi1[jj * L + l] + li[l] * xr1[jj * L + l];
        }
      }
      for (std::size_t l = 0; l < L; ++l) {
        xr0[i * L + l] = ar0[l];
        xi0[i * L + l] = ai0[l];
        xr1[i * L + l] = ar1[l];
        xi1[i * L + l] = ai1[l];
      }
    }
    // Back substitution with U; the reciprocal-diagonal multiply is
    // applied to the register accumulators before the single store.
    for (std::size_t ii = n; ii-- > 0;) {
      for (std::size_t l = 0; l < L; ++l) {
        ar0[l] = xr0[ii * L + l];
        ai0[l] = xi0[ii * L + l];
        ar1[l] = xr1[ii * L + l];
        ai1[l] = xi1[ii * L + l];
      }
      for (std::size_t jj = ii + 1; jj < n; ++jj) {
        const double* const ur = are + (ii * n + jj) * L;
        const double* const ui = aim + (ii * n + jj) * L;
        for (std::size_t l = 0; l < L; ++l) {
          ar0[l] -= ur[l] * xr0[jj * L + l] - ui[l] * xi0[jj * L + l];
          ai0[l] -= ur[l] * xi0[jj * L + l] + ui[l] * xr0[jj * L + l];
        }
        for (std::size_t l = 0; l < L; ++l) {
          ar1[l] -= ur[l] * xr1[jj * L + l] - ui[l] * xi1[jj * L + l];
          ai1[l] -= ur[l] * xi1[jj * L + l] + ui[l] * xr1[jj * L + l];
        }
      }
      const double* const pr = dre + ii * L;
      const double* const pi = dim + ii * L;
      for (std::size_t l = 0; l < L; ++l) {
        const double a = ar0[l];
        const double b = ai0[l];
        xr0[ii * L + l] = a * pr[l] - b * pi[l];
        xi0[ii * L + l] = a * pi[l] + b * pr[l];
      }
      for (std::size_t l = 0; l < L; ++l) {
        const double a = ar1[l];
        const double b = ai1[l];
        xr1[ii * L + l] = a * pr[l] - b * pi[l];
        xi1[ii * L + l] = a * pi[l] + b * pr[l];
      }
    }
  } else {
    // Runtime lane count (arbitrary chunk width): in-place form.
    // Forward substitution with unit-lower L.
    for (std::size_t i = 1; i < n; ++i) {
      for (std::size_t jj = 0; jj < i; ++jj) {
        const double* const lr = are + (i * n + jj) * L;
        const double* const li = aim + (i * n + jj) * L;
        for (std::size_t l = 0; l < L; ++l) {
          xr0[i * L + l] -= lr[l] * xr0[jj * L + l] - li[l] * xi0[jj * L + l];
          xi0[i * L + l] -= lr[l] * xi0[jj * L + l] + li[l] * xr0[jj * L + l];
        }
        for (std::size_t l = 0; l < L; ++l) {
          xr1[i * L + l] -= lr[l] * xr1[jj * L + l] - li[l] * xi1[jj * L + l];
          xi1[i * L + l] -= lr[l] * xi1[jj * L + l] + li[l] * xr1[jj * L + l];
        }
      }
    }
    // Back substitution with U, multiplying by the stored reciprocals.
    for (std::size_t ii = n; ii-- > 0;) {
      for (std::size_t jj = ii + 1; jj < n; ++jj) {
        const double* const ur = are + (ii * n + jj) * L;
        const double* const ui = aim + (ii * n + jj) * L;
        for (std::size_t l = 0; l < L; ++l) {
          xr0[ii * L + l] -= ur[l] * xr0[jj * L + l] - ui[l] * xi0[jj * L + l];
          xi0[ii * L + l] -= ur[l] * xi0[jj * L + l] + ui[l] * xr0[jj * L + l];
        }
        for (std::size_t l = 0; l < L; ++l) {
          xr1[ii * L + l] -= ur[l] * xr1[jj * L + l] - ui[l] * xi1[jj * L + l];
          xi1[ii * L + l] -= ur[l] * xi1[jj * L + l] + ui[l] * xr1[jj * L + l];
        }
      }
      const double* const pr = dre + ii * L;
      const double* const pi = dim + ii * L;
      for (std::size_t l = 0; l < L; ++l) {
        const double a = xr0[ii * L + l];
        const double b = xi0[ii * L + l];
        xr0[ii * L + l] = a * pr[l] - b * pi[l];
        xi0[ii * L + l] = a * pi[l] + b * pr[l];
      }
      for (std::size_t l = 0; l < L; ++l) {
        const double a = xr1[ii * L + l];
        const double b = xi1[ii * L + l];
        xr1[ii * L + l] = a * pr[l] - b * pi[l];
        xi1[ii * L + l] = a * pi[l] + b * pr[l];
      }
    }
  }
}

GNSSLNA_BATCHED_CLONES
void substitute_ports_kernel(const std::size_t n, const std::size_t L,
                             const std::uint32_t* const perm,
                             const std::uint32_t src0, const std::uint32_t src1,
                             const double v0, const double v1,
                             const double* const are, const double* const aim,
                             const double* const dre, const double* const dim,
                             double* const xr0, double* const xi0,
                             double* const xr1, double* const xi1) {
  if (L == 16) {
    substitute_ports_body<16>(n, L, perm, src0, src1, v0, v1, are, aim, dre,
                              dim, xr0, xi0, xr1, xi1);
  } else {
    substitute_ports_body<0>(n, L, perm, src0, src1, v0, v1, are, aim, dre,
                             dim, xr0, xi0, xr1, xi1);
  }
}

// Transposed substitution (U^T forward with reciprocals, then unit L^T
// back) for the e_out right-hand side, over SL lanes at stride L.  The
// base pointers are pre-offset to the first solved lane.  LF/SLF pin the
// stride and trip count at compile time for the band evaluator's hot
// shapes (full 16-lane range and the 7-lane in-band slice).
template <std::size_t LF, std::size_t SLF>
inline __attribute__((always_inline)) void transpose_substitute_body(
    const std::size_t n, const std::size_t L_rt, const std::size_t SL_rt,
    const std::size_t out_row, const double* const are,
    const double* const aim, const double* const dre, const double* const dim,
    double* const wr, double* const wi) {
  const std::size_t L = LF != 0 ? LF : L_rt;
  const std::size_t SL = SLF != 0 ? SLF : SL_rt;
  if constexpr (SLF != 0 && SLF % 16 == 0) {
    // Register accumulators for the row being reduced (see
    // substitute_ports_body): same per-lane operations in the same
    // order, so bit-identical to the in-place form below.  Only for the
    // full 16-lane width — narrower accumulator arrays measured slower
    // than the in-place loops on this kernel.
    double tr[SLF != 0 ? SLF : 1];
    double ti[SLF != 0 ? SLF : 1];
    // Forward substitution with U^T; b = e_out is used unpermuted.
    for (std::size_t i = 0; i < n; ++i) {
      const double b0 = i == out_row ? 1.0 : 0.0;
      for (std::size_t l = 0; l < SL; ++l) {
        tr[l] = b0;
        ti[l] = 0.0;
      }
      for (std::size_t j = 0; j < i; ++j) {
        const double* const ur = are + (j * n + i) * L;
        const double* const ui = aim + (j * n + i) * L;
        const double* const br = wr + j * L;
        const double* const bi = wi + j * L;
        for (std::size_t l = 0; l < SL; ++l) {
          tr[l] -= ur[l] * br[l] - ui[l] * bi[l];
          ti[l] -= ur[l] * bi[l] + ui[l] * br[l];
        }
      }
      const double* const pr = dre + i * L;
      const double* const pi = dim + i * L;
      for (std::size_t l = 0; l < SL; ++l) {
        const double a = tr[l];
        const double b = ti[l];
        wr[i * L + l] = a * pr[l] - b * pi[l];
        wi[i * L + l] = a * pi[l] + b * pr[l];
      }
    }
    // Back substitution with L^T (unit diagonal).
    for (std::size_t ii = n; ii-- > 0;) {
      for (std::size_t l = 0; l < SL; ++l) {
        tr[l] = wr[ii * L + l];
        ti[l] = wi[ii * L + l];
      }
      for (std::size_t j = ii + 1; j < n; ++j) {
        const double* const lr = are + (j * n + ii) * L;
        const double* const li = aim + (j * n + ii) * L;
        const double* const br = wr + j * L;
        const double* const bi = wi + j * L;
        for (std::size_t l = 0; l < SL; ++l) {
          tr[l] -= lr[l] * br[l] - li[l] * bi[l];
          ti[l] -= lr[l] * bi[l] + li[l] * br[l];
        }
      }
      for (std::size_t l = 0; l < SL; ++l) {
        wr[ii * L + l] = tr[l];
        wi[ii * L + l] = ti[l];
      }
    }
  } else {
    // Runtime lane count: in-place form.
    // Forward substitution with U^T; b = e_out is used unpermuted.
    for (std::size_t i = 0; i < n; ++i) {
      double* const tr = wr + i * L;
      double* const ti = wi + i * L;
      const double b0 = i == out_row ? 1.0 : 0.0;
      for (std::size_t l = 0; l < SL; ++l) {
        tr[l] = b0;
        ti[l] = 0.0;
      }
      for (std::size_t j = 0; j < i; ++j) {
        const double* const ur = are + (j * n + i) * L;
        const double* const ui = aim + (j * n + i) * L;
        const double* const br = wr + j * L;
        const double* const bi = wi + j * L;
        for (std::size_t l = 0; l < SL; ++l) {
          tr[l] -= ur[l] * br[l] - ui[l] * bi[l];
          ti[l] -= ur[l] * bi[l] + ui[l] * br[l];
        }
      }
      const double* const pr = dre + i * L;
      const double* const pi = dim + i * L;
      for (std::size_t l = 0; l < SL; ++l) {
        const double a = tr[l];
        const double b = ti[l];
        tr[l] = a * pr[l] - b * pi[l];
        ti[l] = a * pi[l] + b * pr[l];
      }
    }
    // Back substitution with L^T (unit diagonal).
    for (std::size_t ii = n; ii-- > 0;) {
      double* const tr = wr + ii * L;
      double* const ti = wi + ii * L;
      for (std::size_t j = ii + 1; j < n; ++j) {
        const double* const lr = are + (j * n + ii) * L;
        const double* const li = aim + (j * n + ii) * L;
        const double* const br = wr + j * L;
        const double* const bi = wi + j * L;
        for (std::size_t l = 0; l < SL; ++l) {
          tr[l] -= lr[l] * br[l] - li[l] * bi[l];
          ti[l] -= lr[l] * bi[l] + li[l] * br[l];
        }
      }
    }
  }
}

GNSSLNA_BATCHED_CLONES
void transpose_substitute_kernel(const std::size_t n, const std::size_t L,
                                 const std::size_t SL,
                                 const std::size_t out_row,
                                 const double* const are,
                                 const double* const aim,
                                 const double* const dre,
                                 const double* const dim, double* const wr,
                                 double* const wi) {
  if (L == 16 && SL == 16) {
    transpose_substitute_body<16, 16>(n, L, SL, out_row, are, aim, dre, dim,
                                      wr, wi);
  } else if (L == 16 && SL == 7) {
    transpose_substitute_body<16, 7>(n, L, SL, out_row, are, aim, dre, dim,
                                     wr, wi);
  } else {
    transpose_substitute_body<0, 0>(n, L, SL, out_row, are, aim, dre, dim, wr,
                                    wi);
  }
}


}  // namespace

void BatchedPlan::solve_ports(EvalWorkspace& ws) const {
  if (ports_.size() != 2) {
    throw std::invalid_argument("s_params: netlist must have exactly 2 ports");
  }
  if (ports_[0].z0 != ports_[1].z0) {
    throw std::invalid_argument("s_params: ports must share one z0");
  }
  if (ws.plan_ != this || !ws.factored_ || ws.seen_revision_ != revision_) {
    throw std::logic_error("BatchedPlan::solve_ports: workspace not factored");
  }
  const std::size_t n = unknowns_;
  const std::size_t L = ws.lanes_;
  const double* const are = ws.a_re_;
  const double* const aim = ws.a_im_;

  GNSSLNA_OBS_SPAN("circuit.batch.solve");
  GNSSLNA_OBS_COUNT_N("circuit.batch.solves", 2 * L);
  substitute_ports_kernel(
      n, L, ws.perm_, static_cast<std::uint32_t>(ports_[0].node - 1),
      static_cast<std::uint32_t>(ports_[1].node - 1),
      2.0 / std::sqrt(ports_[0].z0), 2.0 / std::sqrt(ports_[1].z0), are, aim,
      ws.dinv_re_, ws.dinv_im_, ws.sol_re_, ws.sol_im_, ws.sol_re_ + n * L,
      ws.sol_im_ + n * L);
  ws.have_ports_ = true;
}

void BatchedPlan::solve_output_transfer(EvalWorkspace& ws,
                                        std::size_t output_port,
                                        std::size_t f_begin,
                                        std::size_t f_end) const {
  if (ports_.size() < 2) {
    throw std::invalid_argument("noise_analysis: not enough ports");
  }
  if (output_port >= ports_.size()) {
    throw std::invalid_argument("noise_analysis: bad port indices");
  }
  if (ws.plan_ != this || !ws.factored_ || ws.seen_revision_ != revision_) {
    throw std::logic_error(
        "BatchedPlan::solve_output_transfer: workspace not factored");
  }
  if (f_begin == kWholeRange) f_begin = ws.f_begin_;
  if (f_end == kWholeRange) f_end = ws.f_end_;
  if (f_begin < ws.f_begin_ || f_end > ws.f_end_ || f_begin >= f_end) {
    throw std::out_of_range(
        "BatchedPlan::solve_output_transfer: lane range out of range");
  }
  const std::size_t n = unknowns_;
  const std::size_t L = ws.lanes_;
  const std::size_t s0 = f_begin - ws.f_begin_;  // lane sub-slice, relative
  const std::size_t SL = f_end - f_begin;
  const double* const are = ws.a_re_;
  const double* const aim = ws.a_im_;
  double* const wr = ws.work_re_;
  double* const wi = ws.work_im_;
  const std::size_t out_row = ports_[output_port].node - 1;

  GNSSLNA_OBS_COUNT_N("circuit.batch.solves", SL);
  transpose_substitute_kernel(n, L, SL, out_row, are + s0, aim + s0,
                              ws.dinv_re_ + s0, ws.dinv_im_ + s0, wr + s0,
                              wi + s0);
  // x[perm[i]] = work[i], per lane.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t l = s0; l < s0 + SL; ++l) {
      const std::size_t dst = ws.perm_[i * L + l];
      ws.w_re_[dst * L + l] = wr[i * L + l];
      ws.w_im_[dst * L + l] = wi[i * L + l];
    }
  }
  ws.have_w_ = true;
  ws.w_port_ = output_port;
  ws.w_begin_ = f_begin;
  ws.w_end_ = f_end;
}

// ---------------------------------------------------------------------------
// Per-frequency result extraction (scalar std::complex arithmetic, exactly
// as CompiledNetlist computes it from its per-frequency solutions)

rf::SParams BatchedPlan::s_params_at(const EvalWorkspace& ws,
                                     std::size_t fi) const {
  if (ws.plan_ != this || !ws.have_ports_ ||
      ws.seen_revision_ != revision_ || fi < ws.f_begin_ ||
      fi >= ws.f_end_) {
    throw std::logic_error("BatchedPlan::s_params_at: lane not solved");
  }
  const std::size_t n = unknowns_;
  const std::size_t L = ws.lanes_;
  const std::size_t l = fi - ws.f_begin_;
  const double sqrt_z0[2] = {std::sqrt(ports_[0].z0), std::sqrt(ports_[1].z0)};
  Complex sm[2][2];
  for (std::size_t j = 0; j < 2; ++j) {
    for (std::size_t i = 0; i < 2; ++i) {
      const std::size_t row = ports_[i].node - 1;
      const Complex sol{ws.sol_re_[(j * n + row) * L + l],
                        ws.sol_im_[(j * n + row) * L + l]};
      sm[i][j] = sol / sqrt_z0[i] -
                 (i == j ? Complex{1.0, 0.0} : Complex{0.0, 0.0});
    }
  }
  rf::SParams out;
  out.frequency_hz = grid_[fi];
  out.z0 = ports_[0].z0;
  out.s11 = sm[0][0];
  out.s12 = sm[0][1];
  out.s21 = sm[1][0];
  out.s22 = sm[1][1];
  return out;
}

NoiseResult BatchedPlan::noise_at(const EvalWorkspace& ws, std::size_t fi,
                                  std::size_t input_port,
                                  std::size_t output_port,
                                  double t_source_k) const {
  if (ports_.size() < 2) {
    throw std::invalid_argument("noise_analysis: not enough ports");
  }
  if (input_port >= ports_.size() || output_port >= ports_.size() ||
      input_port == output_port) {
    throw std::invalid_argument("noise_analysis: bad port indices");
  }
  if (ws.plan_ != this || !ws.have_w_ || ws.w_port_ != output_port ||
      ws.seen_revision_ != revision_ || fi < ws.w_begin_ ||
      fi >= ws.w_end_) {
    throw std::logic_error("BatchedPlan::noise_at: lane not solved");
  }
  const std::size_t L = ws.lanes_;
  const std::size_t l = fi - ws.f_begin_;
  const Port& in = ports_[input_port];
  const Complex y_source{1.0 / in.z0, 0.0};

  const auto transfer = [&](NodeId from, NodeId to) -> Complex {
    const Complex vf = from == kGround
                           ? Complex{0.0, 0.0}
                           : Complex{ws.w_re_[(from - 1) * L + l],
                                     ws.w_im_[(from - 1) * L + l]};
    const Complex vt = to == kGround
                           ? Complex{0.0, 0.0}
                           : Complex{ws.w_re_[(to - 1) * L + l],
                                     ws.w_im_[(to - 1) * L + l]};
    return vf - vt;
  };

  double psd_network = 0.0;
  for (const NoiseTable& group : noise_) {
    const std::size_t k = group.order;
    const Complex* const csd = group.csd.data() + fi * k * k;
    for (std::size_t j = 0; j < k; ++j) {
      ws.h_[j] =
          transfer(group.injections[j].first, group.injections[j].second);
    }
    Complex acc{0.0, 0.0};
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j < k; ++j) {
        acc += ws.h_[i] * csd[i * k + j] * std::conj(ws.h_[j]);
      }
    }
    psd_network += acc.real();
  }

  const Complex h_src = transfer(in.node, kGround);
  const double psd_source = 4.0 * rf::kBoltzmann * t_source_k *
                            std::max(y_source.real(), 0.0) *
                            std::norm(h_src);
  if (psd_source <= 0.0) {
    throw std::domain_error(
        "noise_analysis: source noise does not reach the output (no signal "
        "path, or a lossless source?)");
  }

  NoiseResult r;
  r.source_noise_psd = psd_source;
  r.output_noise_psd = psd_source + psd_network;
  r.noise_factor = r.output_noise_psd / r.source_noise_psd;
  r.noise_figure_db = rf::db_from_ratio(r.noise_factor);
  return r;
}

void BatchedPlan::noise_sweep(const EvalWorkspace& ws, std::size_t input_port,
                              std::size_t output_port, NoiseResult* out,
                              double t_source_k) const {
  if (ports_.size() < 2) {
    throw std::invalid_argument("noise_analysis: not enough ports");
  }
  if (input_port >= ports_.size() || output_port >= ports_.size() ||
      input_port == output_port) {
    throw std::invalid_argument("noise_analysis: bad port indices");
  }
  if (ws.plan_ != this || !ws.have_w_ || ws.w_port_ != output_port ||
      ws.seen_revision_ != revision_) {
    throw std::logic_error("BatchedPlan::noise_sweep: lanes not solved");
  }
  const std::size_t L = ws.lanes_;
  const std::size_t s0 = ws.w_begin_ - ws.f_begin_;
  const std::size_t SL = ws.w_end_ - ws.w_begin_;
  const std::size_t f0 = ws.w_begin_;
  double* const hr = ws.nh_re_;
  double* const hi = ws.nh_im_;
  double* const acc = ws.nacc_;
  double* const psd = ws.npsd_;

  // Network noise: per group, the injection transfers for all lanes, then
  // the quadratic form h^H C h accumulated term by term in noise_at's
  // (i, j) order.  Within a lane every operation — including the expansion
  // of the two std::complex multiplies into naive re/im arithmetic and of
  // t * conj(h_j) into tr*hjr + ti*hji (IEEE subtraction of a negated
  // operand IS addition, bit for bit) — replays noise_at exactly.
  for (std::size_t l = 0; l < SL; ++l) psd[l] = 0.0;
  for (const NoiseTable& group : noise_) {
    const std::size_t k = group.order;
    const std::size_t kk = k * k;
    for (std::size_t j = 0; j < k; ++j) {
      const NodeId from = group.injections[j].first;
      const NodeId to = group.injections[j].second;
      const double* const fr =
          from == kGround ? nullptr : ws.w_re_ + (from - 1) * L + s0;
      const double* const fi_ =
          from == kGround ? nullptr : ws.w_im_ + (from - 1) * L + s0;
      const double* const tr =
          to == kGround ? nullptr : ws.w_re_ + (to - 1) * L + s0;
      const double* const ti =
          to == kGround ? nullptr : ws.w_im_ + (to - 1) * L + s0;
      for (std::size_t l = 0; l < SL; ++l) {
        hr[j * SL + l] = (fr ? fr[l] : 0.0) - (tr ? tr[l] : 0.0);
        hi[j * SL + l] = (fi_ ? fi_[l] : 0.0) - (ti ? ti[l] : 0.0);
      }
    }
    for (std::size_t l = 0; l < SL; ++l) acc[l] = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j < k; ++j) {
        const Complex* const cs = group.csd.data() + f0 * kk + i * k + j;
        const double* const air = hr + i * SL;
        const double* const aii = hi + i * SL;
        const double* const ajr = hr + j * SL;
        const double* const aji = hi + j * SL;
        for (std::size_t l = 0; l < SL; ++l) {
          const double cr = cs[l * kk].real();
          const double ci = cs[l * kk].imag();
          const double mr = air[l] * cr - aii[l] * ci;
          const double mi = air[l] * ci + aii[l] * cr;
          acc[l] += mr * ajr[l] + mi * aji[l];
        }
      }
    }
    for (std::size_t l = 0; l < SL; ++l) psd[l] += acc[l];
  }

  // Source noise and per-lane results, exactly noise_at's expressions; the
  // lane-invariant PSD prefix keeps noise_at's left-to-right association.
  const Port& in = ports_[input_port];
  const Complex y_source{1.0 / in.z0, 0.0};
  const double psd_prefix = 4.0 * rf::kBoltzmann * t_source_k *
                            std::max(y_source.real(), 0.0);
  const double* const sr = ws.w_re_ + (in.node - 1) * L + s0;
  const double* const si = ws.w_im_ + (in.node - 1) * L + s0;
  for (std::size_t l = 0; l < SL; ++l) {
    const double ar = sr[l] - 0.0;
    const double ai = si[l] - 0.0;
    const double psd_source = psd_prefix * (ar * ar + ai * ai);
    if (psd_source <= 0.0) {
      throw std::domain_error(
          "noise_analysis: source noise does not reach the output (no signal "
          "path, or a lossless source?)");
    }
    NoiseResult& r = out[l];
    r.source_noise_psd = psd_source;
    r.output_noise_psd = psd_source + psd[l];
    r.noise_factor = r.output_noise_psd / r.source_noise_psd;
    r.noise_figure_db = rf::db_from_ratio(r.noise_factor);
  }
}

}  // namespace gnsslna::circuit
