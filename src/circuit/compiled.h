// Compiled evaluation plan for repeated netlist analyses on a fixed
// frequency grid.
//
// A CompiledNetlist is built once from a Netlist and a grid.  It
//   (a) flattens the element callbacks into a stamp table: every element's
//       admittance / Y-block and every noise group's CSD is evaluated once
//       per grid frequency and stored (frequency-independent stamps are
//       evaluated exactly once).  Optimizer loops that mutate a few
//       elements through Netlist::set_*_fn re-tabulate only those elements
//       on sync() — revision counters drive the invalidation;
//   (b) shares ONE LU factorization per frequency between the S-parameter
//       port solves and all noise-injection solves.  This is exact, not
//       approximate: with every port terminated in its z0, the S-parameter
//       system matrix and the (standard, z0-source) noise system matrix
//       are assembled from identical additions in identical order, so the
//       legacy double factorization in analysis.cpp computed the same
//       factors twice;
//   (c) reuses per-frequency workspaces (assembled matrix, LU storage,
//       RHS/solution buffers) across evaluations and syncs — zero
//       steady-state heap allocation in the solve path.
//
// Determinism contract: every result is bit-identical to the legacy
// per-call analyses (circuit::s_matrix / s_params / noise_analysis) on the
// same Netlist — the tables hold the exact values the callbacks return,
// re-assembly performs the same floating-point additions in the same
// order, and the factorization/substitution arithmetic is unchanged.
// Thread safety: distinct frequency indices may be evaluated concurrently
// (each index owns its workspace slot), which is exactly the access
// pattern of numeric::parallel_for over the grid.  sync() and concurrent
// evaluation must not overlap, and one index must not be evaluated from
// two threads at once.
#pragma once

#include <vector>

#include "circuit/analysis.h"
#include "circuit/netlist.h"

namespace gnsslna::circuit {

class CompiledNetlist {
 public:
  CompiledNetlist() = default;

  /// Compiles `netlist` over the grid: tabulates every element and noise
  /// group at every grid frequency.  The netlist is not retained; pass the
  /// same (possibly mutated) netlist to sync() later.
  CompiledNetlist(const Netlist& netlist, std::vector<double> grid_hz);

  /// Re-tabulates exactly the elements and noise groups whose revision
  /// changed since construction / the previous sync (see
  /// Netlist::set_admittance_fn etc.).  The netlist must be structurally
  /// identical to the compiled one (same nodes, elements, ports).  Cached
  /// factorizations are invalidated when anything changed.
  void sync(const Netlist& netlist);

  const std::vector<double>& grid() const { return grid_; }
  std::size_t size() const { return grid_.size(); }
  const std::vector<Port>& ports() const { return ports_; }

  /// Full N-port S-matrix at grid index fi; bit-identical to
  /// circuit::s_matrix(netlist, grid()[fi]).
  numeric::ComplexMatrix s_matrix_at(std::size_t fi);

  /// Two-port S-parameters at grid index fi (requires exactly 2 ports of
  /// equal z0); bit-identical to circuit::s_params.
  rf::SParams s_params_at(std::size_t fi);

  /// Standard (z0-source) noise analysis at grid index fi; bit-identical
  /// to circuit::noise_analysis.
  NoiseResult noise_at(std::size_t fi, std::size_t input_port,
                       std::size_t output_port, double t_source_k = rf::kT0);

  struct SAndNoise {
    rf::SParams s;
    NoiseResult noise;
  };

  /// Combined solve: S-parameters and noise analysis from the single
  /// shared factorization at grid index fi.
  SAndNoise s_and_noise_at(std::size_t fi, std::size_t input_port,
                           std::size_t output_port,
                           double t_source_k = rf::kT0);

  /// Number of element/noise tables refreshed by the last sync() (or by
  /// construction); exposed for cache-invalidation tests and benches.
  std::size_t last_sync_retabulated() const { return last_sync_retabulated_; }

 private:
  // One (row, col, sign) addition of an element value into the assembled
  // (ground-eliminated) matrix; order matches Netlist::assemble exactly.
  struct Bump {
    std::uint32_t row, col;
    double sign;  // +1 / -1 for stamps; twoports store explicit terms
  };

  struct StampTable {
    std::vector<Bump> bumps;           // <= 4, legacy bump order
    bool frequency_independent = false;
    std::uint64_t revision = 0;
    std::vector<Complex> values;       // 1 entry if frequency-independent
  };

  struct TwoPortTable {
    NodeId t1, t2, common;
    std::uint64_t revision = 0;
    std::vector<rf::YParams> values;   // one per grid frequency
  };

  struct NoiseTable {
    std::vector<std::pair<NodeId, NodeId>> injections;
    std::uint64_t revision = 0;
    std::vector<numeric::ComplexMatrix> csd;  // one per grid frequency
  };

  struct FreqSlot {
    bool lu_valid = false;
    numeric::ComplexMatrix y;                    // assembly workspace
    numeric::LuDecomposition<Complex> lu;
    std::vector<Complex> rhs, sol, work, h;      // solve workspaces
  };

  void tabulate_stamp(std::size_t si, const Netlist& netlist);
  void tabulate_twoport(std::size_t ti, const Netlist& netlist);
  void tabulate_noise(std::size_t gi, const Netlist& netlist);
  void check_structure(const Netlist& netlist) const;
  FreqSlot& slot_with_lu(std::size_t fi);
  NoiseResult noise_from_slot(FreqSlot& s, std::size_t fi,
                              std::size_t input_port, std::size_t output_port,
                              double t_source_k);

  std::vector<double> grid_;
  std::vector<Port> ports_;
  std::size_t unknowns_ = 0;  // node_count - 1
  std::vector<StampTable> stamps_;
  std::vector<TwoPortTable> twoports_;
  std::vector<NoiseTable> noise_;
  std::vector<FreqSlot> slots_;
  std::size_t last_sync_retabulated_ = 0;
};

}  // namespace gnsslna::circuit
