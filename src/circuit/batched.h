// Frequency-batched, allocation-free evaluation core.
//
// A BatchedPlan is the structure-of-arrays sibling of CompiledNetlist: it
// tabulates the same per-element value tables over a fixed frequency grid,
// but evaluates ALL frequencies of one design as a blocked LU batch.  The
// assembled admittance system is stored as separate re/im double arrays
// with the frequency lane as the innermost (contiguous, vectorizable)
// index; one pass of the factorization advances every frequency in
// lock-step, sharing the pivot pattern across lanes whenever the per-lane
// pivot choices agree (the common case) and falling back to per-lane row
// swaps when they do not.
//
// Determinism contract: every result is bit-identical to CompiledNetlist
// and to the legacy per-call analyses.  The batched kernels replay, per
// frequency lane, the exact arithmetic of numeric::LuDecomposition —
// pivot_magnitude selection, scalar_inverse reciprocals, naive complex
// multiply (which equals the libgcc __muldc3 fast path for the finite,
// non-NaN values circuit analysis produces), and the same
// addition/subtraction order in assembly and substitution.  batched.cpp is
// compiled with -ffp-contract=off so FMA-capable hosts (GNSSLNA_NATIVE)
// cannot contract these expressions away from the scalar path's results.
//
// Memory model: the plan itself is immutable during evaluation and may be
// shared by any number of threads.  All mutable state lives in
// EvalWorkspace, whose storage is carved from a numeric::Arena — heap
// blocks are committed on first binding and reused forever after, so the
// steady-state evaluate path performs ZERO heap allocations (pinned by the
// zero-allocation regression test and the schema-v2 allocs_per_op bench
// counter).  One workspace must never be used from two threads at once;
// distinct workspaces over disjoint lane ranges of one plan may run fully
// concurrently.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/analysis.h"
#include "circuit/netlist.h"
#include "numeric/arena.h"

namespace gnsslna::circuit {

class BatchedPlan;

/// Contiguous [begin, end) slice of a frequency grid assigned to one
/// workspace/chunk.  Chunk boundaries depend only on (chunk, nchunks, n),
/// never on scheduling, which is what keeps multi-threaded band evaluation
/// bit-identical at every thread count.
struct ChunkRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};

inline ChunkRange chunk_range(std::size_t chunk, std::size_t nchunks,
                              std::size_t n) {
  const std::size_t base = n / nchunks;
  const std::size_t rem = n % nchunks;
  const std::size_t extra = chunk < rem ? chunk : rem;
  const std::size_t b = chunk * base + extra;
  return {b, b + base + (chunk < rem ? 1 : 0)};
}

/// Reusable per-thread evaluation scratch: the assembled/factored SoA
/// system, pivot permutations, and solution lanes for one contiguous range
/// of grid frequencies.  All storage is carved from an internal Arena on
/// binding (BatchedPlan::factor rebinds automatically); rebinding to the
/// same plan shape reuses the committed blocks without touching the heap.
class EvalWorkspace {
 public:
  EvalWorkspace() = default;

  EvalWorkspace(const EvalWorkspace&) = delete;
  EvalWorkspace& operator=(const EvalWorkspace&) = delete;
  EvalWorkspace(EvalWorkspace&&) = default;
  EvalWorkspace& operator=(EvalWorkspace&&) = default;

  /// Largest arena footprint ever reached (bytes); pinned by the
  /// zero-allocation regression test so silent workspace growth fails CI.
  std::size_t arena_high_water() const { return arena_.high_water(); }

  /// Lane range currently bound ([f_begin, f_end) grid indices).
  std::size_t f_begin() const { return f_begin_; }
  std::size_t f_end() const { return f_end_; }

  /// True once factor() has run for the bound plan at its current
  /// revision (i.e. results can be read without re-factoring).
  bool factored() const { return factored_; }

 private:
  friend class BatchedPlan;

  numeric::Arena arena_;
  const BatchedPlan* plan_ = nullptr;
  std::size_t bound_unknowns_ = 0;
  std::size_t bound_max_inj_ = 0;
  std::size_t lanes_ = 0;
  std::size_t f_begin_ = 0, f_end_ = 0;
  std::uint64_t seen_revision_ = 0;
  bool factored_ = false;
  bool have_ports_ = false;
  bool have_w_ = false;
  std::size_t w_port_ = 0;       // output port the transfer solve used
  std::size_t w_begin_ = 0;      // grid-index range the transfer solve
  std::size_t w_end_ = 0;        //   actually covered (may be a sub-slice)
  std::size_t reported_hwm_ = 0; // arena bytes already reported to obs

  // Arena-carved spans.  Matrix storage is (row*n + col)*lanes + lane;
  // vector storage is i*lanes + lane.
  double* a_re_ = nullptr;       // assembled system -> packed LU factors
  double* a_im_ = nullptr;
  double* dinv_re_ = nullptr;    // stored pivot reciprocals, n lanes
  double* dinv_im_ = nullptr;
  std::uint32_t* perm_ = nullptr;   // row permutation per lane
  std::uint32_t* pivrow_ = nullptr; // pivot-scan scratch, one per lane
  double* pivmag_ = nullptr;        // pivot-scan magnitudes, one per lane
  double* work_re_ = nullptr;    // transpose-solve scratch
  double* work_im_ = nullptr;
  double* sol_re_ = nullptr;     // port solutions, 2*n lanes
  double* sol_im_ = nullptr;
  double* w_re_ = nullptr;       // output-transfer solution
  double* w_im_ = nullptr;
  Complex* h_ = nullptr;         // per-group injection transfers
  double* nh_re_ = nullptr;      // batched injection transfers
  double* nh_im_ = nullptr;      //   (max_injections rows, lane-major)
  double* nacc_ = nullptr;       // per-group quadratic-form accumulator
  double* npsd_ = nullptr;       // network noise PSD accumulator
};

/// Frequency-batched evaluation plan; see file comment for the contract.
class BatchedPlan {
 public:
  BatchedPlan() = default;

  /// Compiles `netlist` over the grid, tabulating every element and noise
  /// group at every grid frequency (exactly CompiledNetlist's tables, laid
  /// out for batched assembly).  The netlist is not retained.
  BatchedPlan(const Netlist& netlist, std::vector<double> grid_hz);

  /// Re-tabulates exactly the elements/noise groups whose revision changed
  /// (same semantics as CompiledNetlist::sync); bumps the plan revision —
  /// invalidating bound workspaces' factorizations — when any matrix-side
  /// table changed.
  void sync(const Netlist& netlist);

  const std::vector<double>& grid() const { return grid_; }
  std::size_t size() const { return grid_.size(); }
  const std::vector<Port>& ports() const { return ports_; }
  std::size_t unknowns() const { return unknowns_; }
  std::size_t last_sync_retabulated() const { return last_sync_retabulated_; }

  /// Monotone revision; bumped whenever tabulated matrix values change.
  std::uint64_t revision() const { return revision_; }

  // -- Direct retabulation views -------------------------------------
  // The allocation-free hot path (amplifier::BandEvaluator) bypasses the
  // Netlist closures entirely: it writes new tabulated values straight
  // into the plan through these views and then calls mark_values_dirty().
  // The written values must be exactly what the corresponding Netlist
  // closure would have returned — that is what keeps the direct path
  // bit-identical to sync()-driven retabulation (pinned by tests).

  /// Stamp value table; count == 1 for frequency-independent stamps,
  /// grid().size() otherwise.
  struct StampView {
    Complex* values;
    std::size_t count;
  };
  StampView stamp_view(std::size_t stamp_index);

  /// Two-port Y table, one rf::YParams per grid frequency, plus the nine
  /// expanded assembly term-kind rows ([kind * count + fi], in TpKind
  /// order).  Assembly reads ONLY the expanded rows, so every write must
  /// go through set(), which keeps both representations coherent.
  struct TwoPortView {
    rf::YParams* values;
    std::size_t count;
    double* kind_re;
    double* kind_im;

    /// Stores `y` at grid index fi and expands the nine assembly term
    /// values with exactly the component expressions the legacy assembly
    /// forms (same operand order, so the expansion is bit-invisible).
    void set(std::size_t fi, const rf::YParams& y) const {
      values[fi] = y;
      const double r11 = y.y11.real(), i11 = y.y11.imag();
      const double r12 = y.y12.real(), i12 = y.y12.imag();
      const double r21 = y.y21.real(), i21 = y.y21.imag();
      const double r22 = y.y22.real(), i22 = y.y22.imag();
      const std::size_t g = count;
      kind_re[0 * g + fi] = r11;                    // kY11
      kind_im[0 * g + fi] = i11;
      kind_re[1 * g + fi] = r12;                    // kY12
      kind_im[1 * g + fi] = i12;
      kind_re[2 * g + fi] = -(r11 + r12);           // kNeg1112
      kind_im[2 * g + fi] = -(i11 + i12);
      kind_re[3 * g + fi] = r21;                    // kY21
      kind_im[3 * g + fi] = i21;
      kind_re[4 * g + fi] = r22;                    // kY22
      kind_im[4 * g + fi] = i22;
      kind_re[5 * g + fi] = -(r21 + r22);           // kNeg2122
      kind_im[5 * g + fi] = -(i21 + i22);
      kind_re[6 * g + fi] = -(r11 + r21);           // kNeg1121
      kind_im[6 * g + fi] = -(i11 + i21);
      kind_re[7 * g + fi] = -(r12 + r22);           // kNeg1222
      kind_im[7 * g + fi] = -(i12 + i22);
      kind_re[8 * g + fi] = r11 + r12 + r21 + r22;  // kSum
      kind_im[8 * g + fi] = i11 + i12 + i21 + i22;
    }
  };
  TwoPortView twoport_view(std::size_t twoport_index);

  /// Noise CSD table: row-major order x order complex block per grid
  /// frequency, laid out csd[fi*order*order + r*order + c].
  struct NoiseView {
    Complex* csd;
    std::size_t order;
    std::size_t count;  // grid().size()
  };
  NoiseView noise_view(std::size_t group_index);

  /// Invalidates cached factorizations after direct writes through the
  /// views above (noise-only writes do not need it, matching sync()).
  void mark_values_dirty() { ++revision_; }

  // -- Evaluation ------------------------------------------------------
  // All methods are const: the plan is shared read-only state and every
  // mutation happens inside the caller's workspace.

  /// Binds `ws` to lanes [f_begin, f_end) of this plan (re-carving its
  /// arena only if the shape changed), assembles the admittance system for
  /// every lane, and runs the blocked LU factorization.  No-op when `ws`
  /// is already factored for this plan revision and range.
  void factor(EvalWorkspace& ws, std::size_t f_begin, std::size_t f_end) const;

  /// Solves the two port-excitation systems for every bound lane
  /// (requires exactly 2 ports sharing one z0, like s_params).
  void solve_ports(EvalWorkspace& ws) const;

  /// One transpose solve with e_out per lane: the reciprocity transfer
  /// vector that prices every noise injection at the output.  The optional
  /// [f_begin, f_end) grid-index range restricts the solve to a sub-slice
  /// of the bound lanes (band evaluation only prices noise in-band, so the
  /// stability lanes need no transfer solve); lanes are independent, so the
  /// computed sub-slice is bit-identical to a full-range solve.  Defaults
  /// to the whole bound range.
  void solve_output_transfer(EvalWorkspace& ws, std::size_t output_port,
                             std::size_t f_begin = kWholeRange,
                             std::size_t f_end = kWholeRange) const;

  /// Sentinel for solve_output_transfer's default lane range.
  static constexpr std::size_t kWholeRange = static_cast<std::size_t>(-1);

  /// Two-port S-parameters at grid index fi (must lie in the bound lane
  /// range; solve_ports must have run).  Bit-identical to
  /// CompiledNetlist::s_params_at and circuit::s_params.
  rf::SParams s_params_at(const EvalWorkspace& ws, std::size_t fi) const;

  /// Standard (z0-source) noise analysis at grid index fi
  /// (solve_output_transfer must have run for `output_port`).
  /// Bit-identical to CompiledNetlist::noise_at and circuit::noise_analysis.
  NoiseResult noise_at(const EvalWorkspace& ws, std::size_t fi,
                       std::size_t input_port, std::size_t output_port,
                       double t_source_k = rf::kT0) const;

  /// Batched noise_at over the transfer-solved lane range
  /// [ws.w_begin(), ws.w_end()): writes one NoiseResult per lane into
  /// `out` (out[0] is lane w_begin).  Per-lane arithmetic and operation
  /// order are exactly noise_at's — only the loop nesting across lanes
  /// differs — so every field is bit-identical to calling noise_at lane
  /// by lane.
  void noise_sweep(const EvalWorkspace& ws, std::size_t input_port,
                   std::size_t output_port, NoiseResult* out,
                   double t_source_k = rf::kT0) const;

 private:
  // One (row, col, sign) addition of a stamp value into the assembled
  // (ground-eliminated) matrix; order matches Netlist::assemble exactly.
  struct Bump {
    std::uint32_t row, col;
    double sign;
  };

  // One ground-eliminated term of a two-port Y-block, tagged with which of
  // the nine legacy bump expressions produces its value.  The numeric
  // order is the row order of the expanded kind tables written by
  // TwoPortView::set.
  enum class TpKind : std::uint8_t {
    kY11, kY12, kNeg1112, kY21, kY22, kNeg2122, kNeg1121, kNeg1222, kSum
  };
  struct TpTerm {
    std::uint32_t row, col;
    TpKind kind;
  };

  struct StampTable {
    std::vector<Bump> bumps;
    bool frequency_independent = false;
    std::uint64_t revision = 0;
    std::vector<Complex> values;  // 1 entry if frequency-independent
  };
  struct TwoPortTable {
    std::vector<TpTerm> terms;  // legacy 9-term order, ground terms dropped
    std::uint64_t revision = 0;
    std::vector<rf::YParams> values;
    // Expanded per-kind term values ([kind * grid + fi], TpKind order):
    // assembly adds these rows contiguously instead of re-deriving the
    // term expressions from the packed YParams on every factor.
    std::vector<double> kind_re, kind_im;
  };
  struct NoiseTable {
    std::vector<std::pair<NodeId, NodeId>> injections;
    std::uint64_t revision = 0;
    std::size_t order = 0;
    std::vector<Complex> csd;  // [fi*order*order + r*order + c]
  };

  void tabulate_stamp(std::size_t si, const Netlist& netlist);
  void tabulate_twoport(std::size_t ti, const Netlist& netlist);
  void tabulate_noise(std::size_t gi, const Netlist& netlist);
  void check_structure(const Netlist& netlist) const;
  void bind(EvalWorkspace& ws, std::size_t f_begin, std::size_t f_end) const;
  void assemble(EvalWorkspace& ws) const;
  void factor_lanes(EvalWorkspace& ws) const;

  std::vector<double> grid_;
  std::vector<Port> ports_;
  std::size_t unknowns_ = 0;
  std::size_t max_injections_ = 1;
  std::vector<StampTable> stamps_;
  std::vector<TwoPortTable> twoports_;
  std::vector<NoiseTable> noise_;
  std::size_t last_sync_retabulated_ = 0;
  std::uint64_t revision_ = 1;
};

}  // namespace gnsslna::circuit
