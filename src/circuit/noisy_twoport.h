// Stamping a noisy active two-port (e.g. a linearized FET) into a Netlist.
//
// The four IEEE noise parameters are converted to the admittance-
// representation noise correlation matrix via the chain representation
// (Hillbrand-Russer 1976):
//
//   CA = 4 k T0 [ Rn                      (Fmin-1)/2 - Rn conj(Yopt) ]
//               [ (Fmin-1)/2 - Rn Yopt    Rn |Yopt|^2               ]
//
//   CY = T CA T^H,   T = [ -y11  1 ]
//                        [ -y21  0 ]
//
// (one-sided PSDs throughout, matching the 4kTG resistor convention used
// by Netlist::add_resistor).  The resulting correlated current pair is
// injected from the two live terminals to the common terminal.
#pragma once

#include <functional>

#include "circuit/netlist.h"
#include "rf/noise.h"

namespace gnsslna::circuit {

using NoiseParamsFn = std::function<rf::NoiseParams(double)>;

/// Admittance-representation noise correlation matrix (2x2, one-sided,
/// [A^2/Hz]) of a two-port with the given Y-parameters and noise
/// parameters.
numeric::ComplexMatrix noise_correlation_y(const rf::YParams& y,
                                           const rf::NoiseParams& np);

/// Stamps a three-terminal noisy two-port: the Y-block (common-terminal
/// grounded convention) plus its correlated noise current pair.
void add_noisy_three_terminal(Netlist& netlist, NodeId t1, NodeId t2,
                              NodeId common, YBlockFn y, NoiseParamsFn np,
                              std::string label = {});

/// Stamps a PASSIVE two-port at uniform physical temperature: the Y-block
/// plus its thermal noise per Twiss' theorem, CY = 2 k T (Y + Y^H)
/// (one-sided; reduces to 4kTG for a plain resistor).  Used for lossy
/// transmission lines and matching sections.
void add_passive_twoport(Netlist& netlist, NodeId t1, NodeId t2,
                         NodeId common, YBlockFn y,
                         double temperature_k = rf::kT0,
                         std::string label = {});

}  // namespace gnsslna::circuit
