// Stamping a noisy active two-port (e.g. a linearized FET) into a Netlist.
//
// The four IEEE noise parameters are converted to the admittance-
// representation noise correlation matrix via the chain representation
// (Hillbrand-Russer 1976):
//
//   CA = 4 k T0 [ Rn                      (Fmin-1)/2 - Rn conj(Yopt) ]
//               [ (Fmin-1)/2 - Rn Yopt    Rn |Yopt|^2               ]
//
//   CY = T CA T^H,   T = [ -y11  1 ]
//                        [ -y21  0 ]
//
// (one-sided PSDs throughout, matching the 4kTG resistor convention used
// by Netlist::add_resistor).  The resulting correlated current pair is
// injected from the two live terminals to the common terminal.
#pragma once

#include <functional>

#include "circuit/netlist.h"
#include "rf/noise.h"

namespace gnsslna::circuit {

using NoiseParamsFn = std::function<rf::NoiseParams(double)>;

/// Admittance-representation noise correlation matrix (2x2, one-sided,
/// [A^2/Hz]) of a two-port with the given Y-parameters and noise
/// parameters.
numeric::ComplexMatrix noise_correlation_y(const rf::YParams& y,
                                           const rf::NoiseParams& np);

/// Stamps a three-terminal noisy two-port: the Y-block (common-terminal
/// grounded convention) plus its correlated noise current pair.  Returns
/// handles to the stamped element and its noise group for later in-place
/// rebinding via Netlist::set_twoport_fn / set_noise_csd.
ElementRef add_noisy_three_terminal(Netlist& netlist, NodeId t1, NodeId t2,
                                    NodeId common, YBlockFn y, NoiseParamsFn np,
                                    std::string label = {});

/// Stamps a PASSIVE two-port at uniform physical temperature: the Y-block
/// plus its thermal noise per Twiss' theorem, CY = 2 k T (Y + Y^H)
/// (one-sided; reduces to 4kTG for a plain resistor).  Used for lossy
/// transmission lines and matching sections.  Returns handles as above
/// (noise_group == kNoNoiseGroup when temperature_k <= 0).
ElementRef add_passive_twoport(Netlist& netlist, NodeId t1, NodeId t2,
                               NodeId common, YBlockFn y,
                               double temperature_k = rf::kT0,
                               std::string label = {});

/// Builds the Twiss thermal CSD function, CY(f) = 2 k T (Y(f) + Y(f)^H)
/// with tiny negative diagonal round-off clamped (one-sided convention).
std::function<numeric::ComplexMatrix(double)> passive_twoport_csd(
    YBlockFn y, double temperature_k);

/// Allocation-free variant of noise_correlation_y: writes the row-major
/// 2x2 CY into out[4].  Replays the Matrix-operator arithmetic of the
/// closure path term by term (including the zero-entry skip of the matrix
/// product), so the written values are bit-identical to what the CSD
/// closure returns.  Used by the batched direct-retabulation hot path.
void noise_correlation_y_into(const rf::YParams& y, const rf::NoiseParams& np,
                              Complex out[4]);

/// Allocation-free variant of the passive_twoport_csd closure body:
/// writes the row-major 2x2 Twiss CSD into out[4], bit-identical to the
/// closure's ComplexMatrix result.
void passive_twoport_csd_into(const rf::YParams& yp, double temperature_k,
                              Complex out[4]);

/// In-place rebinds of elements previously stamped by the add_* functions
/// above: replace the Y-block (and the derived noise CSD) while keeping
/// the topology, constructing exactly the closures the add_* call would.
void rebind_noisy_three_terminal(Netlist& netlist, const ElementRef& ref,
                                 YBlockFn y, NoiseParamsFn np);
void rebind_passive_twoport(Netlist& netlist, const ElementRef& ref,
                            YBlockFn y, double temperature_k = rf::kT0);

}  // namespace gnsslna::circuit
