// Nonlinear DC operating-point solver.
//
// A small MNA formulation (node voltages + one branch current per ideal
// voltage source) with FETs stamped through their Newton companion model
// (current source + gm/gds linearization).  Plain Newton with step damping,
// falling back to source stepping when cold-start Newton diverges — the
// textbook recipe, and entirely adequate for bias networks of a few nodes.
//
// The amplifier design flow uses this to turn a candidate (Vdd, divider,
// drain resistor) bias network into the actual (Vgs, Vds, Id) operating
// point the optimizer is selecting.
#pragma once

#include <vector>

#include "device/fet_model.h"

namespace gnsslna::circuit {

using DcNodeId = std::size_t;
inline constexpr DcNodeId kDcGround = 0;

struct DcSolution {
  std::vector<double> node_voltages;   ///< index = node id (ground = 0 V)
  std::vector<double> source_currents; ///< per voltage source [A]
  int newton_iterations = 0;
  bool used_source_stepping = false;

  double voltage(DcNodeId n) const { return node_voltages.at(n); }
};

class DcCircuit {
 public:
  DcCircuit() = default;

  DcNodeId add_node();
  std::size_t node_count() const { return node_count_; }

  void add_resistor(DcNodeId a, DcNodeId b, double ohms);

  /// Ideal voltage source forcing v(p) - v(n) = volts.  Returns its index.
  std::size_t add_vsource(DcNodeId p, DcNodeId n, double volts);

  /// Three-terminal FET; the gate is assumed current-free (pHEMT gate
  /// leakage is negligible at LNA bias).  The model reference must outlive
  /// the circuit.
  void add_fet(DcNodeId gate, DcNodeId drain, DcNodeId source,
               const device::FetModel& model);

  /// Solves for the DC operating point.  Throws std::runtime_error when
  /// neither damped Newton nor source stepping converges.
  DcSolution solve(double tolerance_a = 1e-12, int max_iterations = 200) const;

  /// Drain current of FET `index` at a previously obtained solution.
  double fet_drain_current(std::size_t index, const DcSolution& sol) const;

 private:
  struct ResistorElem {
    DcNodeId a, b;
    double conductance;
  };
  struct SourceElem {
    DcNodeId p, n;
    double volts;
  };
  struct FetElem {
    DcNodeId gate, drain, source;
    const device::FetModel* model;
  };

  void check_node(DcNodeId n, const char* who) const;
  bool newton(double vscale, std::vector<double>& x, int max_iterations,
              double tolerance_a, int& iterations_out) const;

  std::size_t node_count_ = 1;  // ground
  std::vector<ResistorElem> resistors_;
  std::vector<SourceElem> sources_;
  std::vector<FetElem> fets_;
};

}  // namespace gnsslna::circuit
