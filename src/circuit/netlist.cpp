#include "circuit/netlist.h"

#include <numbers>
#include <stdexcept>

namespace gnsslna::circuit {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;

// Closure builders shared by the add_* and set_* element entry points, so
// an in-place value rebind produces bit-identical results to rebuilding
// the netlist from scratch.

AdmittanceFn capacitor_admittance(double farads) {
  return [farads](double f) { return Complex{0.0, kTwoPi * f * farads}; };
}

AdmittanceFn inductor_admittance(double henries) {
  return [henries](double f) {
    return Complex{0.0, -1.0 / (kTwoPi * f * henries)};
  };
}

AdmittanceFn resistor_admittance(double g) {
  return [g](double) { return Complex{g, 0.0}; };
}

std::function<numeric::ComplexMatrix(double)> resistor_csd(double psd) {
  return [psd](double) {
    numeric::ComplexMatrix m(1, 1);
    m(0, 0) = psd;
    return m;
  };
}

AdmittanceFn lossy_admittance(std::function<Complex(double)> impedance) {
  return [impedance = std::move(impedance)](double f) -> Complex {
    const Complex z = impedance(f);
    if (std::abs(z) < 1e-12) {
      throw std::domain_error("add_lossy_impedance: near-short element");
    }
    return 1.0 / z;
  };
}

std::function<numeric::ComplexMatrix(double)> lossy_csd(
    std::function<Complex(double)> impedance, double temperature_k) {
  return [impedance = std::move(impedance), temperature_k](double f) {
    const Complex z = impedance(f);
    const Complex y = 1.0 / z;
    numeric::ComplexMatrix m(1, 1);
    // Thermal noise of the dissipative part: 4 k T Re{Y}.
    m(0, 0) = 4.0 * rf::kBoltzmann * temperature_k * std::max(0.0, y.real());
    return m;
  };
}

}  // namespace

Netlist::Netlist() { node_labels_.push_back("gnd"); }

NodeId Netlist::add_node(std::string label) {
  if (label.empty()) {
    label = "n" + std::to_string(node_labels_.size());
  }
  node_labels_.push_back(std::move(label));
  return node_labels_.size() - 1;
}

const std::string& Netlist::node_label(NodeId n) const {
  if (n >= node_labels_.size()) {
    throw std::out_of_range("Netlist::node_label: unknown node");
  }
  return node_labels_[n];
}

NodeId Netlist::find_node(const std::string& label) const {
  for (NodeId n = 0; n < node_labels_.size(); ++n) {
    if (node_labels_[n] == label) return n;
  }
  throw std::invalid_argument("Netlist::find_node: no node labelled '" +
                              label + "'");
}

void Netlist::check_node(NodeId n, const char* who) const {
  if (n >= node_labels_.size()) {
    throw std::invalid_argument(std::string(who) + ": unknown node");
  }
}

ElementId Netlist::add_admittance(NodeId a, NodeId b, AdmittanceFn y,
                                  std::string label,
                                  bool frequency_independent) {
  check_node(a, "add_admittance");
  check_node(b, "add_admittance");
  if (a == b) {
    throw std::invalid_argument("add_admittance: both terminals on same node");
  }
  if (!y) {
    throw std::invalid_argument("add_admittance: null admittance function");
  }
  stamps_.push_back({a, b, a, b, std::move(y), std::move(label),
                     frequency_independent, 0});
  return {ElementId::Kind::kStamp, stamps_.size() - 1};
}

ElementRef Netlist::add_resistor(NodeId a, NodeId b, double ohms,
                                 double temperature_k, std::string label) {
  if (ohms <= 0.0) {
    throw std::invalid_argument("add_resistor: resistance must be positive");
  }
  const double g = 1.0 / ohms;
  ElementRef ref;
  ref.element = add_admittance(a, b, resistor_admittance(g), label,
                               /*frequency_independent=*/true);
  if (temperature_k > 0.0) {
    NoiseGroup ng;
    ng.injections = {{a, b}};
    ng.csd = resistor_csd(4.0 * rf::kBoltzmann * temperature_k * g);
    ng.label = label.empty() ? "R-thermal" : label + "-thermal";
    ref.noise_group = add_noise_group(std::move(ng));
  }
  return ref;
}

ElementRef Netlist::add_lossy_impedance(NodeId a, NodeId b,
                                        std::function<Complex(double)> impedance,
                                        double temperature_k,
                                        std::string label) {
  if (!impedance) {
    throw std::invalid_argument("add_lossy_impedance: null impedance function");
  }
  ElementRef ref;
  ref.element = add_admittance(a, b, lossy_admittance(impedance), label);
  if (temperature_k > 0.0) {
    NoiseGroup ng;
    ng.injections = {{a, b}};
    ng.csd = lossy_csd(impedance, temperature_k);
    ng.label = label.empty() ? "Z-thermal" : label + "-thermal";
    ref.noise_group = add_noise_group(std::move(ng));
  }
  return ref;
}

ElementId Netlist::add_capacitor(NodeId a, NodeId b, double farads,
                                 std::string label) {
  if (farads <= 0.0) {
    throw std::invalid_argument("add_capacitor: capacitance must be positive");
  }
  return add_admittance(a, b, capacitor_admittance(farads), std::move(label));
}

ElementId Netlist::add_inductor(NodeId a, NodeId b, double henries,
                                std::string label) {
  if (henries <= 0.0) {
    throw std::invalid_argument("add_inductor: inductance must be positive");
  }
  return add_admittance(a, b, inductor_admittance(henries), std::move(label));
}

ElementId Netlist::add_vccs(NodeId np, NodeId nn, NodeId cp, NodeId cn,
                            std::function<Complex(double)> gm,
                            std::string label) {
  check_node(np, "add_vccs");
  check_node(nn, "add_vccs");
  check_node(cp, "add_vccs");
  check_node(cn, "add_vccs");
  if (!gm) throw std::invalid_argument("add_vccs: null gm function");
  stamps_.push_back({np, nn, cp, cn, std::move(gm), std::move(label), false, 0});
  return {ElementId::Kind::kStamp, stamps_.size() - 1};
}

ElementId Netlist::add_twoport(NodeId p1, NodeId p2, YBlockFn y,
                               std::string label) {
  return add_three_terminal(p1, p2, kGround, std::move(y), std::move(label));
}

ElementId Netlist::add_three_terminal(NodeId t1, NodeId t2, NodeId common,
                                      YBlockFn y, std::string label) {
  check_node(t1, "add_three_terminal");
  check_node(t2, "add_three_terminal");
  check_node(common, "add_three_terminal");
  if (t1 == t2 || t1 == common || t2 == common) {
    throw std::invalid_argument(
        "add_three_terminal: terminals must be distinct nodes");
  }
  if (!y) throw std::invalid_argument("add_three_terminal: null Y function");
  twoports_.push_back({t1, t2, common, std::move(y), std::move(label), 0});
  return {ElementId::Kind::kTwoPort, twoports_.size() - 1};
}

std::size_t Netlist::add_noise_group(NoiseGroup group) {
  for (const auto& [from, to] : group.injections) {
    check_node(from, "add_noise_group");
    check_node(to, "add_noise_group");
  }
  if (!group.csd) {
    throw std::invalid_argument("add_noise_group: null CSD function");
  }
  noise_groups_.push_back(std::move(group));
  return noise_groups_.size() - 1;
}

void Netlist::set_admittance_fn(ElementId id, AdmittanceFn y) {
  if (id.kind != ElementId::Kind::kStamp || id.index >= stamps_.size()) {
    throw std::invalid_argument("set_admittance_fn: bad element id");
  }
  if (!y) {
    throw std::invalid_argument("set_admittance_fn: null admittance function");
  }
  stamps_[id.index].value = std::move(y);
  stamps_[id.index].revision++;
}

void Netlist::set_twoport_fn(ElementId id, YBlockFn y) {
  if (id.kind != ElementId::Kind::kTwoPort || id.index >= twoports_.size()) {
    throw std::invalid_argument("set_twoport_fn: bad element id");
  }
  if (!y) {
    throw std::invalid_argument("set_twoport_fn: null Y function");
  }
  twoports_[id.index].y = std::move(y);
  twoports_[id.index].revision++;
}

void Netlist::set_noise_csd(std::size_t group,
                            std::function<numeric::ComplexMatrix(double)> csd) {
  if (group >= noise_groups_.size()) {
    throw std::invalid_argument("set_noise_csd: bad noise group index");
  }
  if (!csd) {
    throw std::invalid_argument("set_noise_csd: null CSD function");
  }
  noise_groups_[group].csd = std::move(csd);
  noise_groups_[group].revision++;
}

void Netlist::set_capacitor(ElementId id, double farads) {
  if (farads <= 0.0) {
    throw std::invalid_argument("set_capacitor: capacitance must be positive");
  }
  set_admittance_fn(id, capacitor_admittance(farads));
}

void Netlist::set_inductor(ElementId id, double henries) {
  if (henries <= 0.0) {
    throw std::invalid_argument("set_inductor: inductance must be positive");
  }
  set_admittance_fn(id, inductor_admittance(henries));
}

void Netlist::set_resistor(const ElementRef& ref, double ohms,
                           double temperature_k) {
  if (ohms <= 0.0) {
    throw std::invalid_argument("set_resistor: resistance must be positive");
  }
  const double g = 1.0 / ohms;
  set_admittance_fn(ref.element, resistor_admittance(g));
  if (ref.noise_group != kNoNoiseGroup) {
    if (temperature_k <= 0.0) {
      throw std::invalid_argument(
          "set_resistor: element has registered noise; temperature must "
          "stay positive");
    }
    set_noise_csd(ref.noise_group,
                  resistor_csd(4.0 * rf::kBoltzmann * temperature_k * g));
  }
}

void Netlist::set_lossy_impedance(const ElementRef& ref,
                                  std::function<Complex(double)> impedance,
                                  double temperature_k) {
  if (!impedance) {
    throw std::invalid_argument("set_lossy_impedance: null impedance function");
  }
  set_admittance_fn(ref.element, lossy_admittance(impedance));
  if (ref.noise_group != kNoNoiseGroup) {
    if (temperature_k <= 0.0) {
      throw std::invalid_argument(
          "set_lossy_impedance: element has registered noise; temperature "
          "must stay positive");
    }
    set_noise_csd(ref.noise_group, lossy_csd(std::move(impedance),
                                             temperature_k));
  }
}

std::uint64_t Netlist::element_revision(ElementId id) const {
  if (id.kind == ElementId::Kind::kStamp) {
    if (id.index >= stamps_.size()) {
      throw std::invalid_argument("element_revision: bad element id");
    }
    return stamps_[id.index].revision;
  }
  if (id.index >= twoports_.size()) {
    throw std::invalid_argument("element_revision: bad element id");
  }
  return twoports_[id.index].revision;
}

std::uint64_t Netlist::noise_revision(std::size_t group) const {
  if (group >= noise_groups_.size()) {
    throw std::invalid_argument("noise_revision: bad noise group index");
  }
  return noise_groups_[group].revision;
}

std::size_t Netlist::add_port(NodeId node, double z0, std::string label) {
  check_node(node, "add_port");
  if (node == kGround) {
    throw std::invalid_argument("add_port: port cannot sit on ground");
  }
  if (z0 <= 0.0) {
    throw std::invalid_argument("add_port: z0 must be positive");
  }
  ports_.push_back({node, z0, std::move(label)});
  return ports_.size() - 1;
}

numeric::ComplexMatrix Netlist::assemble(double frequency_hz) const {
  if (frequency_hz <= 0.0) {
    throw std::invalid_argument("Netlist::assemble: frequency must be > 0");
  }
  const std::size_t n = node_count() - 1;  // ground eliminated
  numeric::ComplexMatrix y(n, n);

  // Adds v to Y(row, col) if both indices are non-ground.
  const auto bump = [&](NodeId row, NodeId col, Complex v) {
    if (row == kGround || col == kGround) return;
    y(row - 1, col - 1) += v;
  };

  for (const Stamp& st : stamps_) {
    const Complex v = st.value(frequency_hz);
    bump(st.out_p, st.in_p, v);
    bump(st.out_p, st.in_n, -v);
    bump(st.out_n, st.in_p, -v);
    bump(st.out_n, st.in_n, v);
  }

  for (const TwoPortStamp& tp : twoports_) {
    const rf::YParams yp = tp.y(frequency_hz);
    // Indefinite 3x3 expansion of the grounded-common 2x2 block: rows and
    // columns sum to zero.
    const Complex y11 = yp.y11, y12 = yp.y12, y21 = yp.y21, y22 = yp.y22;
    const NodeId a = tp.t1, b = tp.t2, c = tp.common;
    bump(a, a, y11);
    bump(a, b, y12);
    bump(a, c, -(y11 + y12));
    bump(b, a, y21);
    bump(b, b, y22);
    bump(b, c, -(y21 + y22));
    bump(c, a, -(y11 + y21));
    bump(c, b, -(y12 + y22));
    bump(c, c, y11 + y12 + y21 + y22);
  }
  return y;
}

numeric::ComplexMatrix Netlist::assemble_terminated(double frequency_hz) const {
  numeric::ComplexMatrix y = assemble(frequency_hz);
  for (const Port& p : ports_) {
    y(p.node - 1, p.node - 1) += Complex{1.0 / p.z0, 0.0};
  }
  return y;
}

}  // namespace gnsslna::circuit
