#include "circuit/netlist.h"

#include <numbers>
#include <stdexcept>

namespace gnsslna::circuit {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

Netlist::Netlist() { node_labels_.push_back("gnd"); }

NodeId Netlist::add_node(std::string label) {
  if (label.empty()) {
    label = "n" + std::to_string(node_labels_.size());
  }
  node_labels_.push_back(std::move(label));
  return node_labels_.size() - 1;
}

const std::string& Netlist::node_label(NodeId n) const {
  if (n >= node_labels_.size()) {
    throw std::out_of_range("Netlist::node_label: unknown node");
  }
  return node_labels_[n];
}

NodeId Netlist::find_node(const std::string& label) const {
  for (NodeId n = 0; n < node_labels_.size(); ++n) {
    if (node_labels_[n] == label) return n;
  }
  throw std::invalid_argument("Netlist::find_node: no node labelled '" +
                              label + "'");
}

void Netlist::check_node(NodeId n, const char* who) const {
  if (n >= node_labels_.size()) {
    throw std::invalid_argument(std::string(who) + ": unknown node");
  }
}

void Netlist::add_admittance(NodeId a, NodeId b, AdmittanceFn y,
                             std::string label) {
  check_node(a, "add_admittance");
  check_node(b, "add_admittance");
  if (a == b) {
    throw std::invalid_argument("add_admittance: both terminals on same node");
  }
  if (!y) {
    throw std::invalid_argument("add_admittance: null admittance function");
  }
  stamps_.push_back({a, b, a, b, std::move(y), std::move(label)});
}

void Netlist::add_resistor(NodeId a, NodeId b, double ohms,
                           double temperature_k, std::string label) {
  if (ohms <= 0.0) {
    throw std::invalid_argument("add_resistor: resistance must be positive");
  }
  const double g = 1.0 / ohms;
  add_admittance(a, b, [g](double) { return Complex{g, 0.0}; }, label);
  if (temperature_k > 0.0) {
    NoiseGroup ng;
    ng.injections = {{a, b}};
    const double psd = 4.0 * rf::kBoltzmann * temperature_k * g;
    ng.csd = [psd](double) {
      numeric::ComplexMatrix m(1, 1);
      m(0, 0) = psd;
      return m;
    };
    ng.label = label.empty() ? "R-thermal" : label + "-thermal";
    add_noise_group(std::move(ng));
  }
}

void Netlist::add_lossy_impedance(NodeId a, NodeId b,
                                  std::function<Complex(double)> impedance,
                                  double temperature_k, std::string label) {
  if (!impedance) {
    throw std::invalid_argument("add_lossy_impedance: null impedance function");
  }
  auto y = [impedance](double f) -> Complex {
    const Complex z = impedance(f);
    if (std::abs(z) < 1e-12) {
      throw std::domain_error("add_lossy_impedance: near-short element");
    }
    return 1.0 / z;
  };
  add_admittance(a, b, y, label);
  if (temperature_k > 0.0) {
    NoiseGroup ng;
    ng.injections = {{a, b}};
    ng.csd = [impedance, temperature_k](double f) {
      const Complex z = impedance(f);
      const Complex y = 1.0 / z;
      numeric::ComplexMatrix m(1, 1);
      // Thermal noise of the dissipative part: 4 k T Re{Y}.
      m(0, 0) = 4.0 * rf::kBoltzmann * temperature_k *
                std::max(0.0, y.real());
      return m;
    };
    ng.label = label.empty() ? "Z-thermal" : label + "-thermal";
    add_noise_group(std::move(ng));
  }
}

void Netlist::add_capacitor(NodeId a, NodeId b, double farads,
                            std::string label) {
  if (farads <= 0.0) {
    throw std::invalid_argument("add_capacitor: capacitance must be positive");
  }
  add_admittance(
      a, b,
      [farads](double f) { return Complex{0.0, kTwoPi * f * farads}; },
      std::move(label));
}

void Netlist::add_inductor(NodeId a, NodeId b, double henries,
                           std::string label) {
  if (henries <= 0.0) {
    throw std::invalid_argument("add_inductor: inductance must be positive");
  }
  add_admittance(
      a, b,
      [henries](double f) {
        return Complex{0.0, -1.0 / (kTwoPi * f * henries)};
      },
      std::move(label));
}

void Netlist::add_vccs(NodeId np, NodeId nn, NodeId cp, NodeId cn,
                       std::function<Complex(double)> gm, std::string label) {
  check_node(np, "add_vccs");
  check_node(nn, "add_vccs");
  check_node(cp, "add_vccs");
  check_node(cn, "add_vccs");
  if (!gm) throw std::invalid_argument("add_vccs: null gm function");
  stamps_.push_back({np, nn, cp, cn, std::move(gm), std::move(label)});
}

void Netlist::add_twoport(NodeId p1, NodeId p2, YBlockFn y,
                          std::string label) {
  add_three_terminal(p1, p2, kGround, std::move(y), std::move(label));
}

void Netlist::add_three_terminal(NodeId t1, NodeId t2, NodeId common,
                                 YBlockFn y, std::string label) {
  check_node(t1, "add_three_terminal");
  check_node(t2, "add_three_terminal");
  check_node(common, "add_three_terminal");
  if (t1 == t2 || t1 == common || t2 == common) {
    throw std::invalid_argument(
        "add_three_terminal: terminals must be distinct nodes");
  }
  if (!y) throw std::invalid_argument("add_three_terminal: null Y function");
  twoports_.push_back({t1, t2, common, std::move(y), std::move(label)});
}

void Netlist::add_noise_group(NoiseGroup group) {
  for (const auto& [from, to] : group.injections) {
    check_node(from, "add_noise_group");
    check_node(to, "add_noise_group");
  }
  if (!group.csd) {
    throw std::invalid_argument("add_noise_group: null CSD function");
  }
  noise_groups_.push_back(std::move(group));
}

std::size_t Netlist::add_port(NodeId node, double z0, std::string label) {
  check_node(node, "add_port");
  if (node == kGround) {
    throw std::invalid_argument("add_port: port cannot sit on ground");
  }
  if (z0 <= 0.0) {
    throw std::invalid_argument("add_port: z0 must be positive");
  }
  ports_.push_back({node, z0, std::move(label)});
  return ports_.size() - 1;
}

numeric::ComplexMatrix Netlist::assemble(double frequency_hz) const {
  if (frequency_hz <= 0.0) {
    throw std::invalid_argument("Netlist::assemble: frequency must be > 0");
  }
  const std::size_t n = node_count() - 1;  // ground eliminated
  numeric::ComplexMatrix y(n, n);

  // Adds v to Y(row, col) if both indices are non-ground.
  const auto bump = [&](NodeId row, NodeId col, Complex v) {
    if (row == kGround || col == kGround) return;
    y(row - 1, col - 1) += v;
  };

  for (const Stamp& st : stamps_) {
    const Complex v = st.value(frequency_hz);
    bump(st.out_p, st.in_p, v);
    bump(st.out_p, st.in_n, -v);
    bump(st.out_n, st.in_p, -v);
    bump(st.out_n, st.in_n, v);
  }

  for (const TwoPortStamp& tp : twoports_) {
    const rf::YParams yp = tp.y(frequency_hz);
    // Indefinite 3x3 expansion of the grounded-common 2x2 block: rows and
    // columns sum to zero.
    const Complex y11 = yp.y11, y12 = yp.y12, y21 = yp.y21, y22 = yp.y22;
    const NodeId a = tp.t1, b = tp.t2, c = tp.common;
    bump(a, a, y11);
    bump(a, b, y12);
    bump(a, c, -(y11 + y12));
    bump(b, a, y21);
    bump(b, b, y22);
    bump(b, c, -(y21 + y22));
    bump(c, a, -(y11 + y21));
    bump(c, b, -(y12 + y22));
    bump(c, c, y11 + y12 + y21 + y22);
  }
  return y;
}

numeric::ComplexMatrix Netlist::assemble_terminated(double frequency_hz) const {
  numeric::ComplexMatrix y = assemble(frequency_hz);
  for (const Port& p : ports_) {
    y(p.node - 1, p.node - 1) += Complex{1.0 / p.z0, 0.0};
  }
  return y;
}

}  // namespace gnsslna::circuit
