#include "circuit/compiled.h"

#include <cmath>
#include <stdexcept>

#include "obs/obs.h"
#include "rf/units.h"

namespace gnsslna::circuit {

CompiledNetlist::CompiledNetlist(const Netlist& netlist,
                                 std::vector<double> grid_hz)
    : grid_(std::move(grid_hz)) {
  for (const double f : grid_) {
    if (f <= 0.0) {
      throw std::invalid_argument(
          "CompiledNetlist: grid frequencies must be > 0");
    }
  }
  ports_ = netlist.ports();
  unknowns_ = netlist.node_count() - 1;

  stamps_.resize(netlist.stamps_.size());
  for (std::size_t si = 0; si < stamps_.size(); ++si) {
    const Netlist::Stamp& st = netlist.stamps_[si];
    StampTable& t = stamps_[si];
    t.frequency_independent = st.frequency_independent;
    // Legacy bump order: (out_p,in_p,+) (out_p,in_n,-) (out_n,in_p,-)
    // (out_n,in_n,+), ground-touching terms skipped.
    const NodeId rows[4] = {st.out_p, st.out_p, st.out_n, st.out_n};
    const NodeId cols[4] = {st.in_p, st.in_n, st.in_p, st.in_n};
    const double signs[4] = {1.0, -1.0, -1.0, 1.0};
    for (int b = 0; b < 4; ++b) {
      if (rows[b] == kGround || cols[b] == kGround) continue;
      t.bumps.push_back({static_cast<std::uint32_t>(rows[b] - 1),
                         static_cast<std::uint32_t>(cols[b] - 1), signs[b]});
    }
    tabulate_stamp(si, netlist);
  }

  twoports_.resize(netlist.twoports_.size());
  for (std::size_t ti = 0; ti < twoports_.size(); ++ti) {
    const Netlist::TwoPortStamp& tp = netlist.twoports_[ti];
    TwoPortTable& t = twoports_[ti];
    t.t1 = tp.t1;
    t.t2 = tp.t2;
    t.common = tp.common;
    tabulate_twoport(ti, netlist);
  }

  noise_.resize(netlist.noise_groups_.size());
  for (std::size_t gi = 0; gi < noise_.size(); ++gi) {
    noise_[gi].injections = netlist.noise_groups_[gi].injections;
    tabulate_noise(gi, netlist);
  }
  last_sync_retabulated_ =
      stamps_.size() + twoports_.size() + noise_.size();

  // Preallocate every per-frequency workspace up front so the solve path
  // never allocates.
  std::size_t max_injections = 1;
  for (const NoiseTable& g : noise_) {
    max_injections = std::max(max_injections, g.injections.size());
  }
  slots_.resize(grid_.size());
  for (FreqSlot& s : slots_) {
    s.y = numeric::ComplexMatrix(unknowns_, unknowns_);
    s.rhs.resize(unknowns_);
    s.sol.resize(unknowns_);
    s.work.resize(unknowns_);
    s.h.resize(max_injections);
  }
}

void CompiledNetlist::tabulate_stamp(std::size_t si, const Netlist& netlist) {
  const Netlist::Stamp& st = netlist.stamps_[si];
  StampTable& t = stamps_[si];
  t.revision = st.revision;
  if (grid_.empty()) return;
  if (t.frequency_independent) {
    t.values.assign(1, st.value(grid_[0]));
    return;
  }
  t.values.resize(grid_.size());
  for (std::size_t k = 0; k < grid_.size(); ++k) {
    t.values[k] = st.value(grid_[k]);
  }
}

void CompiledNetlist::tabulate_twoport(std::size_t ti,
                                       const Netlist& netlist) {
  const Netlist::TwoPortStamp& tp = netlist.twoports_[ti];
  TwoPortTable& t = twoports_[ti];
  t.revision = tp.revision;
  t.values.resize(grid_.size());
  for (std::size_t k = 0; k < grid_.size(); ++k) {
    t.values[k] = tp.y(grid_[k]);
  }
}

void CompiledNetlist::tabulate_noise(std::size_t gi, const Netlist& netlist) {
  const NoiseGroup& g = netlist.noise_groups_[gi];
  NoiseTable& t = noise_[gi];
  t.revision = g.revision;
  t.csd.resize(grid_.size());
  const std::size_t k = g.injections.size();
  for (std::size_t fi = 0; fi < grid_.size(); ++fi) {
    t.csd[fi] = g.csd(grid_[fi]);
    if (t.csd[fi].rows() != k || t.csd[fi].cols() != k) {
      throw std::invalid_argument("noise_analysis: CSD size mismatch in '" +
                                  g.label + "'");
    }
  }
}

void CompiledNetlist::check_structure(const Netlist& netlist) const {
  if (netlist.node_count() - 1 != unknowns_ ||
      netlist.stamps_.size() != stamps_.size() ||
      netlist.twoports_.size() != twoports_.size() ||
      netlist.noise_groups_.size() != noise_.size() ||
      netlist.ports().size() != ports_.size()) {
    throw std::invalid_argument(
        "CompiledNetlist::sync: netlist structure changed");
  }
  for (std::size_t p = 0; p < ports_.size(); ++p) {
    if (netlist.ports()[p].node != ports_[p].node ||
        netlist.ports()[p].z0 != ports_[p].z0) {
      throw std::invalid_argument(
          "CompiledNetlist::sync: netlist ports changed");
    }
  }
}

void CompiledNetlist::sync(const Netlist& netlist) {
  check_structure(netlist);
  std::size_t matrix_changes = 0, noise_changes = 0;
  for (std::size_t si = 0; si < stamps_.size(); ++si) {
    if (netlist.stamps_[si].revision != stamps_[si].revision) {
      tabulate_stamp(si, netlist);
      matrix_changes++;
    }
  }
  for (std::size_t ti = 0; ti < twoports_.size(); ++ti) {
    if (netlist.twoports_[ti].revision != twoports_[ti].revision) {
      tabulate_twoport(ti, netlist);
      matrix_changes++;
    }
  }
  for (std::size_t gi = 0; gi < noise_.size(); ++gi) {
    if (netlist.noise_groups_[gi].revision != noise_[gi].revision) {
      tabulate_noise(gi, netlist);
      noise_changes++;
    }
  }
  if (matrix_changes > 0) {
    for (FreqSlot& s : slots_) s.lu_valid = false;
  }
  last_sync_retabulated_ = matrix_changes + noise_changes;
  GNSSLNA_OBS_COUNT("circuit.plan.syncs");
  GNSSLNA_OBS_COUNT_N("circuit.plan.stamp_retabulations", matrix_changes);
  GNSSLNA_OBS_COUNT_N("circuit.plan.noise_retabulations", noise_changes);
}

CompiledNetlist::FreqSlot& CompiledNetlist::slot_with_lu(std::size_t fi) {
  if (fi >= slots_.size()) {
    throw std::out_of_range("CompiledNetlist: grid index out of range");
  }
  FreqSlot& s = slots_[fi];
  if (s.lu_valid) {
    GNSSLNA_OBS_COUNT("circuit.plan.lu_cache_hits");
    return s;
  }
  GNSSLNA_OBS_COUNT("circuit.plan.lu_factorizations");

  // Re-assemble from the tables with the exact additions, in the exact
  // order, of Netlist::assemble + assemble_terminated.
  numeric::ComplexMatrix& y = s.y;
  y.fill(Complex{0.0, 0.0});
  for (const StampTable& t : stamps_) {
    const Complex v =
        t.frequency_independent ? t.values[0] : t.values[fi];
    for (const Bump& b : t.bumps) {
      if (b.sign > 0.0) {
        y(b.row, b.col) += v;
      } else {
        y(b.row, b.col) -= v;
      }
    }
  }
  const auto bump = [&](NodeId row, NodeId col, Complex v) {
    if (row == kGround || col == kGround) return;
    y(row - 1, col - 1) += v;
  };
  for (const TwoPortTable& t : twoports_) {
    const rf::YParams& yp = t.values[fi];
    const Complex y11 = yp.y11, y12 = yp.y12, y21 = yp.y21, y22 = yp.y22;
    const NodeId a = t.t1, b = t.t2, c = t.common;
    bump(a, a, y11);
    bump(a, b, y12);
    bump(a, c, -(y11 + y12));
    bump(b, a, y21);
    bump(b, b, y22);
    bump(b, c, -(y21 + y22));
    bump(c, a, -(y11 + y21));
    bump(c, b, -(y12 + y22));
    bump(c, c, y11 + y12 + y21 + y22);
  }
  for (const Port& p : ports_) {
    y(p.node - 1, p.node - 1) += Complex{1.0 / p.z0, 0.0};
  }

  s.lu.refactor(y);
  s.lu_valid = true;
  return s;
}

numeric::ComplexMatrix CompiledNetlist::s_matrix_at(std::size_t fi) {
  if (ports_.empty()) {
    throw std::invalid_argument("s_matrix: not enough ports");
  }
  FreqSlot& s = slot_with_lu(fi);
  const std::size_t k = ports_.size();
  std::vector<double> sqrt_z0(k);
  for (std::size_t i = 0; i < k; ++i) sqrt_z0[i] = std::sqrt(ports_[i].z0);

  GNSSLNA_OBS_COUNT_N("circuit.plan.port_solves", k);
  numeric::ComplexMatrix out(k, k);
  for (std::size_t j = 0; j < k; ++j) {
    std::fill(s.rhs.begin(), s.rhs.end(), Complex{0.0, 0.0});
    s.rhs[ports_[j].node - 1] = Complex{2.0 / sqrt_z0[j], 0.0};
    s.lu.solve_into(s.rhs, s.sol);
    for (std::size_t i = 0; i < k; ++i) {
      out(i, j) = s.sol[ports_[i].node - 1] / sqrt_z0[i] -
                  (i == j ? Complex{1.0, 0.0} : Complex{0.0, 0.0});
    }
  }
  return out;
}

rf::SParams CompiledNetlist::s_params_at(std::size_t fi) {
  if (ports_.size() != 2) {
    throw std::invalid_argument("s_params: netlist must have exactly 2 ports");
  }
  if (ports_[0].z0 != ports_[1].z0) {
    throw std::invalid_argument("s_params: ports must share one z0");
  }
  FreqSlot& s = slot_with_lu(fi);
  const double sqrt_z0[2] = {std::sqrt(ports_[0].z0),
                             std::sqrt(ports_[1].z0)};
  GNSSLNA_OBS_COUNT_N("circuit.plan.port_solves", 2);
  Complex sm[2][2];
  for (std::size_t j = 0; j < 2; ++j) {
    std::fill(s.rhs.begin(), s.rhs.end(), Complex{0.0, 0.0});
    s.rhs[ports_[j].node - 1] = Complex{2.0 / sqrt_z0[j], 0.0};
    s.lu.solve_into(s.rhs, s.sol);
    for (std::size_t i = 0; i < 2; ++i) {
      sm[i][j] = s.sol[ports_[i].node - 1] / sqrt_z0[i] -
                 (i == j ? Complex{1.0, 0.0} : Complex{0.0, 0.0});
    }
  }
  rf::SParams out;
  out.frequency_hz = grid_[fi];
  out.z0 = ports_[0].z0;
  out.s11 = sm[0][0];
  out.s12 = sm[0][1];
  out.s21 = sm[1][0];
  out.s22 = sm[1][1];
  return out;
}

NoiseResult CompiledNetlist::noise_from_slot(FreqSlot& s, std::size_t fi,
                                             std::size_t input_port,
                                             std::size_t output_port,
                                             double t_source_k) {
  const Port& in = ports_[input_port];
  const Port& out = ports_[output_port];
  const Complex y_source{1.0 / in.z0, 0.0};

  // Reciprocity, exactly as in the legacy noise_core: one transpose solve
  // with e_out gives the transfer from every injection to the output node.
  GNSSLNA_OBS_COUNT("circuit.plan.transpose_solves");
  std::fill(s.rhs.begin(), s.rhs.end(), Complex{0.0, 0.0});
  s.rhs[out.node - 1] = Complex{1.0, 0.0};
  s.lu.solve_transposed_into(s.rhs, s.sol, s.work);
  const std::vector<Complex>& w = s.sol;
  const auto transfer = [&](NodeId from, NodeId to) -> Complex {
    const Complex vf = from == kGround ? Complex{0.0, 0.0} : w[from - 1];
    const Complex vt = to == kGround ? Complex{0.0, 0.0} : w[to - 1];
    return vf - vt;
  };

  // Contribution of the netlist's registered noise groups; loop structure
  // and accumulation order mirror the legacy noise_core exactly.
  double psd_network = 0.0;
  for (const NoiseTable& group : noise_) {
    const std::size_t k = group.injections.size();
    const numeric::ComplexMatrix& csd = group.csd[fi];
    for (std::size_t j = 0; j < k; ++j) {
      s.h[j] = transfer(group.injections[j].first, group.injections[j].second);
    }
    Complex acc{0.0, 0.0};
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j < k; ++j) {
        acc += s.h[i] * csd(i, j) * std::conj(s.h[j]);
      }
    }
    psd_network += acc.real();
  }

  const Complex h_src = transfer(in.node, kGround);
  const double psd_source = 4.0 * rf::kBoltzmann * t_source_k *
                            std::max(y_source.real(), 0.0) *
                            std::norm(h_src);
  if (psd_source <= 0.0) {
    throw std::domain_error(
        "noise_analysis: source noise does not reach the output (no signal "
        "path, or a lossless source?)");
  }

  NoiseResult r;
  r.source_noise_psd = psd_source;
  r.output_noise_psd = psd_source + psd_network;
  r.noise_factor = r.output_noise_psd / r.source_noise_psd;
  r.noise_figure_db = rf::db_from_ratio(r.noise_factor);
  return r;
}

NoiseResult CompiledNetlist::noise_at(std::size_t fi, std::size_t input_port,
                                      std::size_t output_port,
                                      double t_source_k) {
  if (ports_.size() < 2) {
    throw std::invalid_argument("noise_analysis: not enough ports");
  }
  if (input_port >= ports_.size() || output_port >= ports_.size() ||
      input_port == output_port) {
    throw std::invalid_argument("noise_analysis: bad port indices");
  }
  FreqSlot& s = slot_with_lu(fi);
  return noise_from_slot(s, fi, input_port, output_port, t_source_k);
}

CompiledNetlist::SAndNoise CompiledNetlist::s_and_noise_at(
    std::size_t fi, std::size_t input_port, std::size_t output_port,
    double t_source_k) {
  SAndNoise out;
  out.s = s_params_at(fi);
  out.noise = noise_at(fi, input_port, output_port, t_source_k);
  return out;
}

}  // namespace gnsslna::circuit
