#include "circuit/analysis.h"

#include <cmath>
#include <stdexcept>

#include "circuit/batched.h"
#include "circuit/compiled.h"
#include "numeric/parallel.h"
#include "rf/units.h"

namespace gnsslna::circuit {

namespace {

void require_ports(const Netlist& netlist, std::size_t at_least,
                   const char* who) {
  if (netlist.ports().size() < at_least) {
    throw std::invalid_argument(std::string(who) + ": not enough ports");
  }
}

/// Solves the terminated system for a unit current injected between the
/// given node pair; returns the node-voltage vector (ground eliminated).
std::vector<Complex> solve_injection(
    const numeric::LuDecomposition<Complex>& lu, std::size_t n, NodeId from,
    NodeId to) {
  std::vector<Complex> rhs(n, Complex{0.0, 0.0});
  if (from != kGround) rhs[from - 1] += Complex{1.0, 0.0};
  if (to != kGround) rhs[to - 1] -= Complex{1.0, 0.0};
  return lu.solve(rhs);
}

}  // namespace

numeric::ComplexMatrix s_matrix(const Netlist& netlist, double frequency_hz) {
  require_ports(netlist, 1, "s_matrix");
  const std::vector<Port>& ports = netlist.ports();
  const std::size_t n = netlist.node_count() - 1;
  const numeric::LuDecomposition<Complex> lu(
      netlist.assemble_terminated(frequency_hz));

  // Hoist sqrt(z0) out of the loops and solve every port excitation in one
  // multi-RHS call (one buffer pair for all columns, identical per-column
  // substitution arithmetic).
  std::vector<double> sqrt_z0(ports.size());
  for (std::size_t i = 0; i < ports.size(); ++i) {
    sqrt_z0[i] = std::sqrt(ports[i].z0);
  }
  numeric::ComplexMatrix rhs(n, ports.size());
  for (std::size_t k = 0; k < ports.size(); ++k) {
    // Norton excitation for a_k = 1: current 2/sqrt(z0_k) into the node.
    rhs(ports[k].node - 1, k) = Complex{2.0 / sqrt_z0[k], 0.0};
  }
  const numeric::ComplexMatrix v = lu.solve(rhs);

  numeric::ComplexMatrix s(ports.size(), ports.size());
  for (std::size_t k = 0; k < ports.size(); ++k) {
    for (std::size_t i = 0; i < ports.size(); ++i) {
      s(i, k) = v(ports[i].node - 1, k) / sqrt_z0[i] -
                (i == k ? Complex{1.0, 0.0} : Complex{0.0, 0.0});
    }
  }
  return s;
}

rf::SParams s_params(const Netlist& netlist, double frequency_hz) {
  if (netlist.ports().size() != 2) {
    throw std::invalid_argument("s_params: netlist must have exactly 2 ports");
  }
  if (netlist.ports()[0].z0 != netlist.ports()[1].z0) {
    throw std::invalid_argument("s_params: ports must share one z0");
  }
  const numeric::ComplexMatrix s = s_matrix(netlist, frequency_hz);
  rf::SParams out;
  out.frequency_hz = frequency_hz;
  out.z0 = netlist.ports()[0].z0;
  out.s11 = s(0, 0);
  out.s12 = s(0, 1);
  out.s21 = s(1, 0);
  out.s22 = s(1, 1);
  return out;
}

rf::SweepData s_sweep(const Netlist& netlist,
                      const std::vector<double>& frequencies_hz,
                      std::size_t threads) {
  // One batched plan for the whole sweep: every element is tabulated once
  // per frequency, and each thread chunk factors its contiguous lane range
  // as one blocked LU batch.  Per-lane results never depend on which chunk
  // a lane landed in (the kernels are lane-independent), so the sweep is
  // bit-identical to per-call s_params at any thread count.
  const std::size_t nf = frequencies_hz.size();
  if (nf == 0) return {};
  const BatchedPlan plan(netlist, frequencies_hz);
  const std::size_t nchunks = std::min(numeric::resolve_threads(threads), nf);
  rf::SweepData sweep(nf);
  std::vector<EvalWorkspace> workspaces(nchunks);
  const auto run_chunk = [&](std::size_t c) {
    const ChunkRange r = chunk_range(c, nchunks, nf);
    EvalWorkspace& ws = workspaces[c];
    plan.factor(ws, r.begin, r.end);
    plan.solve_ports(ws);
    for (std::size_t fi = r.begin; fi < r.end; ++fi) {
      sweep[fi] = plan.s_params_at(ws, fi);
    }
  };
  if (nchunks == 1) {
    run_chunk(0);
  } else {
    numeric::parallel_for(threads, nchunks, run_chunk);
  }
  return sweep;
}

namespace {

/// Shared noise-analysis core: the input port is terminated in the given
/// source admittance (with thermal noise 4 k T Re{ys}); every other port
/// keeps its z0 termination.
NoiseResult noise_core(const Netlist& netlist, std::size_t input_port,
                       std::size_t output_port, Complex y_source,
                       double frequency_hz, double t_source_k) {
  const Port& in = netlist.ports()[input_port];
  const Port& out = netlist.ports()[output_port];
  const std::size_t n = netlist.node_count() - 1;

  numeric::ComplexMatrix y = netlist.assemble(frequency_hz);
  for (std::size_t p = 0; p < netlist.ports().size(); ++p) {
    const Port& port = netlist.ports()[p];
    if (p == input_port) {
      y(port.node - 1, port.node - 1) += y_source;
    } else {
      y(port.node - 1, port.node - 1) += Complex{1.0 / port.z0, 0.0};
    }
  }
  const numeric::LuDecomposition<Complex> lu(std::move(y));

  // Reciprocity: ONE transpose solve with the output unit vector yields
  // the transfer from EVERY unit current injection to the output node
  // voltage, h = w[from] - w[to] with Y^T w = e_out — replacing one full
  // solve per injection.
  std::vector<Complex> e_out(n, Complex{0.0, 0.0});
  e_out[out.node - 1] = Complex{1.0, 0.0};
  std::vector<Complex> w, work;
  lu.solve_transposed_into(e_out, w, work);
  const auto transfer = [&](NodeId from, NodeId to) -> Complex {
    const Complex vf =
        from == kGround ? Complex{0.0, 0.0} : w[from - 1];
    const Complex vt = to == kGround ? Complex{0.0, 0.0} : w[to - 1];
    return vf - vt;
  };

  // Contribution of the netlist's registered noise groups.
  double psd_network = 0.0;
  for (const NoiseGroup& group : netlist.noise_groups()) {
    const std::size_t k = group.injections.size();
    const numeric::ComplexMatrix csd = group.csd(frequency_hz);
    if (csd.rows() != k || csd.cols() != k) {
      throw std::invalid_argument("noise_analysis: CSD size mismatch in '" +
                                  group.label + "'");
    }
    std::vector<Complex> h(k);
    for (std::size_t j = 0; j < k; ++j) {
      h[j] = transfer(group.injections[j].first, group.injections[j].second);
    }
    // PSD of V_out = sum_i h_i j_i:  <V V*> = sum_ij h_i C_ij conj(h_j).
    Complex acc{0.0, 0.0};
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j < k; ++j) {
        acc += h[i] * csd(i, j) * std::conj(h[j]);
      }
    }
    psd_network += acc.real();
  }

  // Source-termination thermal noise: 4 k T Re{Ys} current PSD.
  const Complex h_src = transfer(in.node, kGround);
  const double psd_source = 4.0 * rf::kBoltzmann * t_source_k *
                            std::max(y_source.real(), 0.0) *
                            std::norm(h_src);

  if (psd_source <= 0.0) {
    throw std::domain_error(
        "noise_analysis: source noise does not reach the output (no signal "
        "path, or a lossless source?)");
  }

  // The output termination is the measurement load: excluded from F by the
  // IEEE definition.
  NoiseResult r;
  r.source_noise_psd = psd_source;
  r.output_noise_psd = psd_source + psd_network;
  r.noise_factor = r.output_noise_psd / r.source_noise_psd;
  r.noise_figure_db = rf::db_from_ratio(r.noise_factor);
  return r;
}

}  // namespace

NoiseResult noise_analysis(const Netlist& netlist, std::size_t input_port,
                           std::size_t output_port, double frequency_hz,
                           double t_source_k) {
  require_ports(netlist, 2, "noise_analysis");
  if (input_port >= netlist.ports().size() ||
      output_port >= netlist.ports().size() || input_port == output_port) {
    throw std::invalid_argument("noise_analysis: bad port indices");
  }
  const double z0 = netlist.ports()[input_port].z0;
  return noise_core(netlist, input_port, output_port,
                    Complex{1.0 / z0, 0.0}, frequency_hz, t_source_k);
}

NoiseResult noise_analysis_source_pull(const Netlist& netlist,
                                       std::size_t input_port,
                                       std::size_t output_port,
                                       Complex z_source, double frequency_hz,
                                       double t_source_k) {
  require_ports(netlist, 2, "noise_analysis_source_pull");
  if (input_port >= netlist.ports().size() ||
      output_port >= netlist.ports().size() || input_port == output_port) {
    throw std::invalid_argument("noise_analysis_source_pull: bad ports");
  }
  if (z_source.real() <= 0.0) {
    throw std::invalid_argument(
        "noise_analysis_source_pull: source must have positive resistance");
  }
  return noise_core(netlist, input_port, output_port, 1.0 / z_source,
                    frequency_hz, t_source_k);
}

std::vector<double> noise_figure_sweep(
    const Netlist& netlist, std::size_t input_port, std::size_t output_port,
    const std::vector<double>& frequencies_hz) {
  // Batched plan: one blocked LU factorization for the whole grid, one
  // transposed transfer solve, then the lane-batched noise sweep —
  // bit-identical to per-call noise_analysis.
  if (frequencies_hz.empty()) return {};
  const BatchedPlan plan(netlist, frequencies_hz);
  EvalWorkspace ws;
  plan.factor(ws, 0, frequencies_hz.size());
  plan.solve_output_transfer(ws, output_port);
  std::vector<NoiseResult> results(frequencies_hz.size());
  plan.noise_sweep(ws, input_port, output_port, results.data());
  std::vector<double> nf;
  nf.reserve(results.size());
  for (const NoiseResult& r : results) {
    nf.push_back(r.noise_figure_db);
  }
  return nf;
}

Complex voltage_transfer(const Netlist& netlist, std::size_t input_port,
                         NodeId plus, NodeId minus, double frequency_hz) {
  require_ports(netlist, 1, "voltage_transfer");
  if (input_port >= netlist.ports().size()) {
    throw std::invalid_argument("voltage_transfer: bad port index");
  }
  const Port& in = netlist.ports()[input_port];
  const std::size_t n = netlist.node_count() - 1;
  const numeric::LuDecomposition<Complex> lu(
      netlist.assemble_terminated(frequency_hz));
  // Thevenin V_s behind z0 == Norton V_s/z0 alongside the stamped 1/z0.
  std::vector<Complex> rhs(n, Complex{0.0, 0.0});
  rhs[in.node - 1] = Complex{1.0 / in.z0, 0.0};  // V_s = 1
  const std::vector<Complex> v = lu.solve(rhs);
  const Complex vp = plus == kGround ? Complex{0.0, 0.0} : v[plus - 1];
  const Complex vm = minus == kGround ? Complex{0.0, 0.0} : v[minus - 1];
  return vp - vm;
}

Complex transimpedance(const Netlist& netlist, NodeId from, NodeId to,
                       std::size_t output_port, double frequency_hz) {
  require_ports(netlist, 1, "transimpedance");
  if (output_port >= netlist.ports().size()) {
    throw std::invalid_argument("transimpedance: bad port index");
  }
  const Port& out = netlist.ports()[output_port];
  const std::size_t n = netlist.node_count() - 1;
  const numeric::LuDecomposition<Complex> lu(
      netlist.assemble_terminated(frequency_hz));
  const std::vector<Complex> v = solve_injection(lu, n, from, to);
  return v[out.node - 1];
}

}  // namespace gnsslna::circuit
