// Frequency-domain netlist for AC nodal analysis.
//
// All RF elements in this library are admittance-representable (lumped
// passives, dispersive components, transmission lines via their Y-block,
// FETs via their linearized Y-block), so plain nodal analysis — a complex
// admittance matrix per frequency — is sufficient and robust: no MNA branch
// rows, no DC pathologies (DC bias is solved separately in dc.h).
//
// Each element may register thermal noise (resistive elements) or a
// correlated noise-current group (active devices); the noise analysis in
// noise_analysis.h consumes those registrations.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "numeric/matrix.h"
#include "rf/twoport.h"

namespace gnsslna::circuit {

using Complex = std::complex<double>;

/// Node handle; node 0 is ground.
using NodeId = std::size_t;
inline constexpr NodeId kGround = 0;

/// Admittance as a function of frequency [Hz] -> [S].
using AdmittanceFn = std::function<Complex(double)>;

/// 2x2 Y-block as a function of frequency (for two-port elements).
using YBlockFn = std::function<rf::YParams(double)>;

/// A correlated group of noise current sources.  Each injection drives a
/// current between two nodes; `csd(f)` returns the k x k cross-spectral
/// density matrix [A^2/Hz] of the k injection currents at frequency f.
struct NoiseGroup {
  std::vector<std::pair<NodeId, NodeId>> injections;  ///< (from, to) node pairs
  std::function<numeric::ComplexMatrix(double)> csd;
  std::string label;
  std::uint64_t revision = 0;  ///< bumped by Netlist::set_noise_csd
};

/// External port definition.
struct Port {
  NodeId node = kGround;
  double z0 = rf::kZ0;
  std::string label;
};

inline constexpr std::size_t kNoNoiseGroup = static_cast<std::size_t>(-1);

/// Stable handle to a stamped element.  Elements are identified by their
/// position in assembly order (all 4-node stamps first, then all two-port
/// blocks), which CompiledNetlist relies on for bit-identical re-assembly.
struct ElementId {
  enum class Kind : std::uint8_t { kStamp, kTwoPort };
  Kind kind = Kind::kStamp;
  std::size_t index = static_cast<std::size_t>(-1);
};

/// Handle pair for elements that register their own noise (resistors,
/// lossy impedances, noisy/passive two-ports).
struct ElementRef {
  ElementId element;
  std::size_t noise_group = kNoNoiseGroup;
};

class Netlist {
 public:
  Netlist();

  /// Creates a new circuit node.
  NodeId add_node(std::string label = {});

  std::size_t node_count() const { return node_labels_.size(); }
  const std::string& node_label(NodeId n) const;

  /// Finds a node by label.  Throws std::invalid_argument if absent.
  NodeId find_node(const std::string& label) const;

  /// Adds a noiseless two-terminal admittance between nodes a and b.
  /// `frequency_independent` marks y as constant over frequency, letting a
  /// CompiledNetlist tabulate it with a single evaluation.
  ElementId add_admittance(NodeId a, NodeId b, AdmittanceFn y,
                           std::string label = {},
                           bool frequency_independent = false);

  /// Adds an ideal resistor; registers its thermal noise at temperature_k.
  ElementRef add_resistor(NodeId a, NodeId b, double ohms,
                          double temperature_k = rf::kT0,
                          std::string label = {});

  /// Adds a dispersive one-port (passives::Component adapter): admittance
  /// 1/z(f); its ESR's thermal noise is registered at temperature_k.
  ElementRef add_lossy_impedance(NodeId a, NodeId b,
                                 std::function<Complex(double)> impedance,
                                 double temperature_k = rf::kT0,
                                 std::string label = {});

  /// Adds an ideal capacitor (noiseless).
  ElementId add_capacitor(NodeId a, NodeId b, double farads,
                          std::string label = {});

  /// Adds an ideal inductor (noiseless).
  ElementId add_inductor(NodeId a, NodeId b, double henries,
                         std::string label = {});

  /// Voltage-controlled current source: current gm * (v(cp) - v(cn))
  /// flows from np to nn (into np out of nn inside the source).
  ElementId add_vccs(NodeId np, NodeId nn, NodeId cp, NodeId cn,
                     std::function<Complex(double)> gm,
                     std::string label = {});

  /// Stamps a grounded two-port (port1 node, port2 node, common ground).
  ElementId add_twoport(NodeId p1, NodeId p2, YBlockFn y,
                        std::string label = {});

  /// Stamps a three-terminal element whose grounded-common-terminal
  /// behaviour is the given 2x2 Y-block (e.g. a common-source FET placed
  /// with an arbitrary source node): the 2x2 block is expanded to the
  /// indefinite 3x3 admittance matrix.
  ElementId add_three_terminal(NodeId t1, NodeId t2, NodeId common,
                               YBlockFn y, std::string label = {});

  /// Registers a correlated noise-current group.  Returns its index.
  std::size_t add_noise_group(NoiseGroup group);

  /// Replaces the value function of an existing 4-node stamp (admittance /
  /// R / L / C / VCCS) in place, preserving topology.  Bumps the element's
  /// revision so compiled plans re-tabulate exactly this element.
  void set_admittance_fn(ElementId id, AdmittanceFn y);

  /// Replaces the Y-block of an existing two-port element in place.
  void set_twoport_fn(ElementId id, YBlockFn y);

  /// Replaces the CSD function of an existing noise group in place.
  void set_noise_csd(std::size_t group,
                     std::function<numeric::ComplexMatrix(double)> csd);

  /// Value-level rebinds: update an existing element to a new component
  /// value, constructing exactly the closures the matching add_* overload
  /// would (so a rebound netlist is bit-identical to a freshly built one).
  void set_capacitor(ElementId id, double farads);
  void set_inductor(ElementId id, double henries);
  void set_resistor(const ElementRef& ref, double ohms,
                    double temperature_k = rf::kT0);
  void set_lossy_impedance(const ElementRef& ref,
                           std::function<Complex(double)> impedance,
                           double temperature_k = rf::kT0);

  /// Monotonic per-element change counter (starts at 0, bumped by the
  /// set_* mutators); compiled plans use it for cache invalidation.
  std::uint64_t element_revision(ElementId id) const;
  std::uint64_t noise_revision(std::size_t group) const;

  std::size_t stamp_count() const { return stamps_.size(); }
  std::size_t twoport_count() const { return twoports_.size(); }

  /// Declares an external port at a node.  Returns the port index.
  std::size_t add_port(NodeId node, double z0 = rf::kZ0,
                       std::string label = {});

  const std::vector<Port>& ports() const { return ports_; }
  const std::vector<NoiseGroup>& noise_groups() const { return noise_groups_; }

  /// Assembles the (node_count-1)^2 complex admittance matrix at frequency
  /// f, ground eliminated, WITHOUT port terminations.
  numeric::ComplexMatrix assemble(double frequency_hz) const;

  /// Like assemble(), plus 1/z0 termination stamped at every port node.
  numeric::ComplexMatrix assemble_terminated(double frequency_hz) const;

 private:
  friend class CompiledNetlist;
  friend class BatchedPlan;

  struct Stamp {
    // Generic 4-node stamp: adds value(f) at (rows x cols) combinations
    // with the standard +/- sign pattern.  Two-terminal elements use
    // (a, b, a, b); a VCCS uses (np, nn, cp, cn).
    NodeId out_p, out_n, in_p, in_n;
    AdmittanceFn value;
    std::string label;
    bool frequency_independent = false;
    std::uint64_t revision = 0;
  };
  struct TwoPortStamp {
    NodeId t1, t2, common;
    YBlockFn y;
    std::string label;
    std::uint64_t revision = 0;
  };

  void check_node(NodeId n, const char* who) const;

  std::vector<std::string> node_labels_;
  std::vector<Stamp> stamps_;
  std::vector<TwoPortStamp> twoports_;
  std::vector<NoiseGroup> noise_groups_;
  std::vector<Port> ports_;
};

}  // namespace gnsslna::circuit
