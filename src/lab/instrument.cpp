#include "lab/instrument.h"

#include <cmath>
#include <stdexcept>

#include "amplifier/lna.h"
#include "obs/obs.h"
#include "rf/units.h"

namespace gnsslna::lab {

Complex TraceNoise::corrupt(Complex value, numeric::Rng& rng) const {
  GNSSLNA_OBS_COUNT("lab.trace_noise.readings");
  double s = sigma;
  if (outlier_fraction > 0.0 && rng.bernoulli(outlier_fraction)) {
    s *= outlier_scale;
  }
  return value + Complex{rng.normal(0.0, s), rng.normal(0.0, s)};
}

void TraceNoise::corrupt(rf::SParams& s, numeric::Rng& rng) const {
  GNSSLNA_OBS_COUNT("lab.trace_noise.readings");
  double sig = sigma;
  if (outlier_fraction > 0.0 && rng.bernoulli(outlier_fraction)) {
    sig *= outlier_scale;
  }
  const auto corrupt_entry = [&](rf::Complex& entry) {
    entry += rf::Complex{rng.normal(0.0, sig), rng.normal(0.0, sig)};
  };
  corrupt_entry(s.s11);
  corrupt_entry(s.s12);
  corrupt_entry(s.s21);
  corrupt_entry(s.s22);
}

EnrTable::EnrTable(std::vector<Row> rows) : rows_(std::move(rows)) {
  if (rows_.empty()) {
    throw std::invalid_argument("EnrTable: need at least one row");
  }
  for (std::size_t i = 1; i < rows_.size(); ++i) {
    if (rows_[i].frequency_hz <= rows_[i - 1].frequency_hz) {
      throw std::invalid_argument("EnrTable: frequencies must be ascending");
    }
  }
}

EnrTable EnrTable::standard_15db() {
  // A typical solid-state source: ~15 dB with a shallow downward slope,
  // the shape printed on the side of every lab's noise head.
  return EnrTable({{0.1e9, 15.20},
                   {0.5e9, 15.05},
                   {1.0e9, 14.90},
                   {1.5e9, 14.80},
                   {2.0e9, 14.72},
                   {3.0e9, 14.60},
                   {6.0e9, 14.35}});
}

double EnrTable::enr_db(double frequency_hz) const {
  if (frequency_hz <= rows_.front().frequency_hz) {
    return rows_.front().enr_db;
  }
  if (frequency_hz >= rows_.back().frequency_hz) {
    return rows_.back().enr_db;
  }
  for (std::size_t i = 1; i < rows_.size(); ++i) {
    if (frequency_hz <= rows_[i].frequency_hz) {
      const Row& a = rows_[i - 1];
      const Row& b = rows_[i];
      const double t =
          (frequency_hz - a.frequency_hz) / (b.frequency_hz - a.frequency_hz);
      return a.enr_db + t * (b.enr_db - a.enr_db);
    }
  }
  return rows_.back().enr_db;  // unreachable
}

double EnrTable::t_hot_k(double frequency_hz, double t_cold_k) const {
  return rf::kT0 * rf::ratio_from_db(enr_db(frequency_hz)) + t_cold_k;
}

TwoPortDut dut_from_netlist(std::shared_ptr<const circuit::Netlist> netlist) {
  if (netlist == nullptr || netlist->ports().size() != 2) {
    throw std::invalid_argument(
        "dut_from_netlist: need a netlist with exactly 2 ports");
  }
  TwoPortDut dut;
  dut.s = [netlist](double f) { return circuit::s_params(*netlist, f); };
  dut.noise = [netlist](double f, double t_source_k) {
    return circuit::noise_analysis(*netlist, 0, 1, f, t_source_k);
  };
  dut.noise_pull = [netlist](double f, Complex z_source, double t_source_k) {
    return circuit::noise_analysis_source_pull(*netlist, 0, 1, z_source, f,
                                               t_source_k);
  };
  return dut;
}

TwoPortDut dut_from_design(const amplifier::LnaDesign& design) {
  return dut_from_netlist(
      std::make_shared<const circuit::Netlist>(design.build_netlist()));
}

}  // namespace gnsslna::lab
