// Virtual Y-factor noise-figure meter.
//
// The classic two-temperature measurement a noise-figure analyzer runs:
//   1. CALIBRATE — the ENR-calibrated noise source drives the receiver
//      directly; the hot/cold power ratio gives the receiver's own noise
//      temperature T_rx (the "second stage" of the Friis cascade).
//   2. MEASURE — the DUT is inserted; the hot/cold ratio now gives the
//      system temperature T_sys = T_dut + T_rx / G_dut, and the hot-cold
//      power DIFFERENCE ratio measures the DUT gain G_dut.
//   3. CORRECT — Friis second-stage correction T_dut = T_sys - T_rx/G_dut,
//      F = 1 + T_dut / T0 (rf/noise.h owns the general Friis arithmetic;
//      the meter applies its two-stage specialization).
//
// Error sources modelled: ENR table error (the source's true ENR differs
// from its printed calibration), cold-load switching jitter (the source's
// physical temperature wanders between switch states), and detector
// reading jitter on every power measurement.  The meter's math only ever
// sees the BELIEVED values (printed ENR, nominal T_cold) — exactly the
// systematic-error structure of the real instrument.
//
// measure_noise_parameters() extends the meter with a source-pull tuner:
// Y-factor NF at a ring of source impedances, Lane-fitted to the four IEEE
// noise parameters (rf::fit_noise_parameters) — the measured counterpart
// of amplifier::amplifier_noise_parameters, and the data behind the
// Touchstone noise block lab::measure_design() emits.
#pragma once

#include <cstdint>
#include <vector>

#include "lab/instrument.h"
#include "rf/sweep.h"

namespace gnsslna::lab {

struct NoiseMeterSettings {
  EnrTable enr = EnrTable::standard_15db();  ///< printed calibration table
  double enr_error_sigma_db = 0.03;  ///< true-vs-printed ENR (per frequency)
  double detector_sigma_db = 0.01;   ///< power-reading jitter (per reading)
  double t_cold_k = 296.0;           ///< nominal cold (ambient) temperature
  double t_cold_jitter_k = 0.3;      ///< switching jitter of the cold state
  double receiver_nf_db = 7.0;       ///< receiver (second-stage) noise figure
  std::uint64_t seed = 0x4E0159;

  /// Worst-case NF error bound [dB] implied by the configured
  /// uncertainties at DUT gain >= gain_db — the tolerance the acceptance
  /// tests check against (root-sum-square of ENR error, detector jitter on
  /// the four readings, and the cold-jitter contribution).
  double nf_uncertainty_db(double gain_db = 10.0) const;
};

struct NoiseFigurePoint {
  double frequency_hz = 0.0;
  double nf_db = 0.0;          ///< corrected DUT noise figure
  double gain_db = 0.0;        ///< measured DUT gain (hot-cold difference)
  double y_factor_db = 0.0;    ///< raw DUT-path Y factor
  double t_receiver_k = 0.0;   ///< receiver temperature from the cal step
};

class NoiseFigureMeter {
 public:
  NoiseFigureMeter(NoiseMeterSettings settings, std::vector<double> grid_hz);

  /// Full calibrate + measure + correct run over the grid.  Per-frequency
  /// points fan out across `threads`; bit-identical for any count.
  std::vector<NoiseFigurePoint> measure_nf(const TwoPortDut& dut,
                                           std::size_t threads = 1);

  /// Source-pull noise-parameter measurement: Y-factor NF at `n_states`
  /// source states (matched + a |gamma| = ring_radius ring), Lane fit per
  /// frequency.  Requires dut.noise_pull.
  rf::NoiseSweep measure_noise_parameters(const TwoPortDut& dut,
                                          std::size_t n_states = 9,
                                          double ring_radius = 0.4,
                                          std::size_t threads = 1);

  const std::vector<double>& grid() const { return grid_; }

 private:
  /// One Y-factor DUT measurement (cal + meas) at grid point i; psd(f, T)
  /// must return the DUT output noise PSD [V^2/Hz] with the source at T.
  NoiseFigurePoint y_factor_point(
      std::size_t point, std::uint64_t sweep,
      const std::function<circuit::NoiseResult(double, double)>& psd) const;

  NoiseMeterSettings settings_;
  std::vector<double> grid_;
  numeric::Rng root_;
  std::uint64_t sweep_counter_ = 0;
};

}  // namespace gnsslna::lab
