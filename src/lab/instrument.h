// Shared primitives of the virtual measurement lab.
//
// Every instrument in src/lab/ is built from the same small vocabulary:
//   * TraceNoise      — additive complex receiver noise with optional gross
//                       outliers (probe lift-off, connector glitches).  This
//                       is THE VNA reading-noise model of the library; the
//                       synthetic extraction bench (extract/measurement.cpp)
//                       corrupts its S-parameter readings through the same
//                       struct, so there is exactly one implementation.
//   * EnrTable        — excess-noise-ratio vs. frequency of a noise source,
//                       the calibration data a Y-factor meter relies on.
//   * TwoPortDut      — the device-under-test abstraction: closures
//                       returning TRUE S-parameters and TRUE output noise,
//                       which instruments then observe through their error
//                       models.  Built from any circuit::Netlist (or an
//                       amplifier::LnaDesign via dut_from_design).
//
// Determinism contract (matches DESIGN.md "Parallel evaluation &
// reproducibility"): instruments never share mutable RNG state across
// measurement points.  Each instrument owns a root numeric::Rng seeded from
// its settings; each sweep takes a fresh counter-based stream
// root.split(sweep_counter), and each frequency point inside the sweep
// draws from sweep_stream.split(point_index).  Results are therefore
// bit-identical for any thread count and across repeated runs.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "circuit/analysis.h"
#include "circuit/netlist.h"
#include "numeric/rng.h"
#include "rf/twoport.h"

namespace gnsslna::amplifier {
class LnaDesign;
}

namespace gnsslna::lab {

using Complex = rf::Complex;

/// Additive complex Gaussian reading noise with optional gross outliers.
/// Draw order is part of the contract (extract/measurement.cpp depends on
/// it for bit-stable synthetic benches): one Bernoulli per reading group
/// (only when outlier_fraction > 0), then Re/Im normal pairs per entry.
struct TraceNoise {
  double sigma = 0.0;             ///< additive complex sigma per entry
  double outlier_fraction = 0.0;  ///< fraction of gross outliers
  double outlier_scale = 10.0;    ///< outlier magnitude multiplier

  /// Corrupts a single complex reading.
  Complex corrupt(Complex value, numeric::Rng& rng) const;

  /// Corrupts all four entries of a two-port reading.  One outlier draw
  /// covers the whole reading (a glitched sweep point corrupts every
  /// receiver channel at once), then s11, s12, s21, s22 in that order.
  void corrupt(rf::SParams& s, numeric::Rng& rng) const;
};

/// Excess noise ratio of a calibrated noise source vs. frequency, the
/// classic diode-source calibration table (ENR = (T_hot - T0) / T0 in dB).
/// Lookup is linear in dB between table rows, clamped at the edges.
class EnrTable {
 public:
  struct Row {
    double frequency_hz = 0.0;
    double enr_db = 0.0;
  };

  /// Rows must be non-empty and ascending in frequency.
  explicit EnrTable(std::vector<Row> rows);

  /// The standard 15 dB diode source with a gentle L-band slope.
  static EnrTable standard_15db();

  double enr_db(double frequency_hz) const;

  /// Hot temperature [K] for cold (physical) temperature t_cold:
  /// T_hot = T0 * ENR_linear + t_cold.
  double t_hot_k(double frequency_hz, double t_cold_k) const;

  const std::vector<Row>& rows() const { return rows_; }

 private:
  std::vector<Row> rows_;
};

/// The device-under-test as the lab sees it: pure closures over frequency
/// (and source state for noise), safe to call concurrently — the
/// per-frequency instrument fan-out (numeric/parallel.h) requires it.
struct TwoPortDut {
  /// True two-port S-parameters at f.
  std::function<rf::SParams(double)> s;

  /// True output-port noise analysis with the input source termination
  /// held at t_source_k (the Y-factor hot/cold states).
  std::function<circuit::NoiseResult(double f, double t_source_k)> noise;

  /// Like `noise`, with the input termination replaced by a complex source
  /// impedance (what a source-pull tuner presents).  May be empty when the
  /// DUT cannot be source-pulled; the noise-parameter measurement then
  /// throws.
  std::function<circuit::NoiseResult(double f, Complex z_source,
                                     double t_source_k)>
      noise_pull;
};

/// Wraps a two-port netlist (ports 0 -> input, 1 -> output).  The netlist
/// is shared, not copied; it must outlive the DUT and stay unmutated while
/// measurements run.
TwoPortDut dut_from_netlist(std::shared_ptr<const circuit::Netlist> netlist);

/// Builds the DUT for an assembled LNA design (owns the netlist).
TwoPortDut dut_from_design(const amplifier::LnaDesign& design);

}  // namespace gnsslna::lab
