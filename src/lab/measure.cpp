#include "lab/measure.h"

#include <cmath>
#include <memory>
#include <utility>

#include "microstrip/line.h"
#include "nonlinear/two_tone.h"
#include "numeric/parallel.h"
#include "rf/sweep.h"
#include "rf/touchstone.h"

namespace gnsslna::lab {

namespace {

double rms_s_error(const rf::SweepData& a, const rf::SweepData& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += std::norm(a[i].s11 - b[i].s11) + std::norm(a[i].s12 - b[i].s12) +
           std::norm(a[i].s21 - b[i].s21) + std::norm(a[i].s22 - b[i].s22);
  }
  return std::sqrt(acc / (4.0 * static_cast<double>(a.size())));
}

}  // namespace

std::pair<amplifier::DesignVector, amplifier::AmplifierConfig> fabricate(
    const amplifier::AmplifierConfig& config,
    const amplifier::DesignVector& design, const FabricationModel& fab) {
  amplifier::AmplifierConfig cfg = config;
  cfg.resolve();
  amplifier::DesignVector d = design;
  if (fab.scale == 0.0) {
    return {d, cfg};
  }

  // Same distributions and draw order as the yield analysis
  // (amplifier/yield.cpp) — this IS one Monte-Carlo unit, the one that got
  // soldered.
  numeric::Rng rng(fab.seed);
  const amplifier::ToleranceModel& tol = fab.tolerances;
  const double s = fab.scale;
  const auto uniform_tol = [&](double nominal, double rel) {
    return nominal * (1.0 + s * rel * (2.0 * rng.uniform() - 1.0));
  };

  d.l_shunt_h = uniform_tol(d.l_shunt_h, tol.lc_relative);
  d.c_mid_f = uniform_tol(d.c_mid_f, tol.lc_relative);
  d.c_out_sh_f = uniform_tol(d.c_out_sh_f, tol.lc_relative);
  d.l_sdeg_h = uniform_tol(d.l_sdeg_h, tol.lc_relative);
  d.c_in_f = uniform_tol(d.c_in_f, tol.lc_relative);
  d.r_fb_ohm = uniform_tol(d.r_fb_ohm, 0.01);  // 1% thick film
  d.l_in_m += rng.normal(0.0, s * tol.length_sigma_m);
  d.l_in2_m += rng.normal(0.0, s * tol.length_sigma_m);
  d.l_out_m += rng.normal(0.0, s * tol.length_sigma_m);
  d.l_out2_m += rng.normal(0.0, s * tol.length_sigma_m);
  d.vgs += rng.normal(0.0, s * tol.vbias_sigma);
  d.vds += rng.normal(0.0, s * tol.vbias_sigma);

  const double w50 = cfg.w50_m;  // the board is etched once: width is fixed
  cfg.substrate.epsilon_r =
      uniform_tol(cfg.substrate.epsilon_r, tol.er_relative);
  cfg.substrate.height_m =
      uniform_tol(cfg.substrate.height_m, tol.height_relative);
  cfg.w50_m = w50;

  d = amplifier::DesignVector::from_vector(
      amplifier::DesignVector::bounds().clamp(d.to_vector()));
  return {d, cfg};
}

MeasuredDesignReport measure_design(const device::Phemt& device,
                                    const amplifier::AmplifierConfig& config,
                                    const amplifier::DesignVector& design,
                                    const LabOptions& options) {
  const std::vector<double> grid =
      options.grid_hz.empty() ? rf::linear_grid(1.0e9, 1.8e9, 17)
                              : options.grid_hz;
  const std::size_t threads = options.threads;

  MeasuredDesignReport report;

  // The unit on the bench is the fabricated one; the simulation column of
  // the report is the NOMINAL design — exactly the comparison a prototype
  // write-up makes.
  auto [fab_design, fab_config] =
      fabricate(config, design, options.fabrication);
  report.fabricated = fab_design;
  const amplifier::LnaDesign built(device, fab_config, fab_design);
  amplifier::AmplifierConfig nominal_config = config;
  nominal_config.resolve();
  const amplifier::LnaDesign nominal(device, nominal_config, design);
  const TwoPortDut dut = dut_from_design(built);

  // --- VNA: calibrate, measure, de-embed. ---
  Vna vna(options.vna, grid);
  if (options.use_fixtures) {
    const auto launcher = std::make_shared<microstrip::Line>(
        fab_config.substrate, fab_config.w50_m, options.fixture_length_m);
    const auto fixture_s = [launcher](double f) {
      return launcher->s_params(f);
    };
    vna.set_fixture(fixture_s, fixture_s);
  }
  const SoltCalibration cal = vna.calibrate(threads);
  VnaMeasurement meas = vna.measure(dut, cal, threads);

  report.s_true = built.s_sweep(grid, threads);
  report.s_raw = std::move(meas.raw);
  report.s_dut = std::move(meas.dut);
  report.raw_rms_error = rms_s_error(report.s_raw, report.s_true);
  report.corrected_rms_error = rms_s_error(report.s_dut, report.s_true);

  // --- Y-factor noise-figure meter + source-pull noise parameters. ---
  NoiseFigureMeter meter(options.noise_meter, grid);
  report.nf_points = meter.measure_nf(dut, threads);
  report.noise_parameters =
      meter.measure_noise_parameters(dut, options.noise_states, 0.4, threads);
  report.nf_sim_db = numeric::parallel_map(
      threads, grid.size(),
      [&](std::size_t i) { return nominal.noise_figure_db(grid[i]); });

  // --- Two-tone IM3 bench. ---
  Im3Bench bench(options.im3);
  report.im3 = bench.measure(built, threads);
  nonlinear::TwoToneOptions tt;
  tt.f1_hz = options.im3.f1_hz;
  tt.f2_hz = options.im3.f2_hz;
  report.oip3_sim_dbm =
      nonlinear::two_tone_sweep(nominal, options.im3.p_start_dbm,
                                options.im3.p_stop_dbm, options.im3.n_points,
                                tt)
          .oip3_dbm;
  report.oip3_delta_db = report.im3.oip3_dbm - report.oip3_sim_dbm;

  // --- Aggregates for the measured-vs-simulated table. ---
  const rf::SweepData s_nominal = nominal.s_sweep(grid, threads);
  double nf_meas = 0.0, nf_sim = 0.0, g_meas = 0.0, g_sim = 0.0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    nf_meas += report.nf_points[i].nf_db;
    nf_sim += report.nf_sim_db[i];
    g_meas += report.nf_points[i].gain_db;
    g_sim += rf::db_from_ratio(std::norm(s_nominal[i].s21));
  }
  const double n = static_cast<double>(grid.size());
  report.nf_meas_avg_db = nf_meas / n;
  report.nf_sim_avg_db = nf_sim / n;
  report.gain_meas_avg_db = g_meas / n;
  report.gain_sim_avg_db = g_sim / n;

  report.touchstone =
      rf::write_touchstone_string(report.s_dut, report.noise_parameters);
  return report;
}

MeasuredDesignReport measure_design(const device::Phemt& device,
                                    const amplifier::AmplifierConfig& config,
                                    const amplifier::DesignOutcome& outcome,
                                    const LabOptions& options) {
  return measure_design(device, config, outcome.snapped, options);
}

}  // namespace gnsslna::lab
