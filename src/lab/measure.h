// Top-level virtual measurement campaign: the design -> measure -> verify
// loop closed in software.
//
// measure_design() takes a FINISHED design, perturbs it through fabrication
// tolerances (the prototype that actually got built is never the nominal
// one), then characterizes the fabricated unit with the three instruments:
//   * the SOLT-calibrated VNA (S-parameters, raw vs corrected vs
//     de-embedded when microstrip launchers are fitted),
//   * the Y-factor noise-figure meter (NF sweep + source-pulled noise
//     parameters for the Touchstone noise block),
//   * the two-tone IM3 bench (OIP3/IIP3).
// The corrected data are serialized as a Touchstone 1.x two-port file with
// a trailing noise block (rf/touchstone), and every measured figure is
// reported side by side with the simulation of the NOMINAL design — the
// measured-vs-simulated table a paper's "experimental results" section
// shows.
#pragma once

#include <string>

#include "amplifier/design_flow.h"
#include "amplifier/yield.h"
#include "lab/im3_bench.h"
#include "lab/noise_meter.h"
#include "lab/vna.h"

namespace gnsslna::lab {

/// How the built prototype differs from the nominal design.  Reuses the
/// yield-analysis tolerance model (amplifier/yield.h) for component and
/// etch errors; seed 0 with scale 0 measures the nominal design itself.
struct FabricationModel {
  amplifier::ToleranceModel tolerances = {};
  double scale = 1.0;  ///< 0 disables perturbation; 1 full tolerances
  std::uint64_t seed = 0xFAB01;
};

struct LabOptions {
  std::vector<double> grid_hz;  ///< empty -> 17 points over 1.0-1.8 GHz
  VnaSettings vna = {};
  NoiseMeterSettings noise_meter = {};
  Im3BenchSettings im3 = {};
  FabricationModel fabrication = {};
  bool use_fixtures = true;        ///< microstrip launchers on both ports
  double fixture_length_m = 6e-3;  ///< launcher length (50-ohm trace)
  std::size_t noise_states = 9;    ///< source-pull states for noise params
  std::size_t threads = 1;
};

struct MeasuredDesignReport {
  amplifier::DesignVector fabricated;  ///< the unit that was "built"

  // VNA.
  rf::SweepData s_true;       ///< fabricated unit's true S-parameters
  rf::SweepData s_raw;        ///< uncorrected readings
  rf::SweepData s_dut;        ///< corrected + de-embedded
  double raw_rms_error = 0.0;        ///< RMS |S_raw - S_true| over the grid
  double corrected_rms_error = 0.0;  ///< RMS |S_dut - S_true|

  // Noise.
  std::vector<NoiseFigurePoint> nf_points;   ///< measured NF sweep
  std::vector<double> nf_sim_db;             ///< nominal-design simulated NF
  rf::NoiseSweep noise_parameters;           ///< measured (Lane-fitted)

  // Linearity.
  Im3Report im3;
  double oip3_sim_dbm = 0.0;  ///< nominal-design simulated OIP3

  // Aggregates for the measured-vs-simulated table.
  double nf_meas_avg_db = 0.0;
  double nf_sim_avg_db = 0.0;
  double gain_meas_avg_db = 0.0;
  double gain_sim_avg_db = 0.0;
  double oip3_delta_db = 0.0;  ///< measured - simulated

  /// Corrected S-parameters + measured noise parameters, Touchstone 1.x.
  std::string touchstone;
};

/// Runs the full campaign on a finished design.
MeasuredDesignReport measure_design(const device::Phemt& device,
                                    const amplifier::AmplifierConfig& config,
                                    const amplifier::DesignVector& design,
                                    const LabOptions& options = {});

/// Convenience overload: measures the snapped design of a design-flow
/// outcome (the unit that would go to fabrication).
MeasuredDesignReport measure_design(const device::Phemt& device,
                                    const amplifier::AmplifierConfig& config,
                                    const amplifier::DesignOutcome& outcome,
                                    const LabOptions& options = {});

/// The fabricated (perturbed) design and its board config — exposed so
/// tests can compare instrument readings against the true built unit.
std::pair<amplifier::DesignVector, amplifier::AmplifierConfig> fabricate(
    const amplifier::AmplifierConfig& config,
    const amplifier::DesignVector& design, const FabricationModel& fab);

}  // namespace gnsslna::lab
