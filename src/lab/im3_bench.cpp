#include "lab/im3_bench.h"

#include <cmath>
#include <stdexcept>

#include "nonlinear/two_tone.h"
#include "numeric/parallel.h"
#include "obs/obs.h"
#include "rf/units.h"

namespace gnsslna::lab {

namespace {

constexpr std::uint64_t kGenSalt = 0x6C1A49E0B7F2D583ULL;

/// What the analyzer displays for a true line at p_dbm: the line power adds
/// to the noise floor in watts, then the reading jitters.
double detected_dbm(double p_true_dbm, double floor_dbm, double sigma_db,
                    numeric::Rng& rng) {
  const double watts =
      rf::watt_from_dbm(p_true_dbm) + rf::watt_from_dbm(floor_dbm);
  return 10.0 * std::log10(watts / 1e-3) + sigma_db * rng.normal();
}

}  // namespace

Im3Bench::Im3Bench(Im3BenchSettings settings)
    : settings_(settings), root_(settings_.seed) {
  if (settings_.n_points < 2) {
    throw std::invalid_argument("Im3Bench: need >= 2 drive points");
  }
  if (settings_.p_stop_dbm <= settings_.p_start_dbm) {
    throw std::invalid_argument("Im3Bench: p_stop must exceed p_start");
  }
}

Im3Report Im3Bench::measure(const amplifier::LnaDesign& lna,
                            std::size_t threads) {
  const std::uint64_t sweep = sweep_counter_++;
  GNSSLNA_OBS_COUNT("lab.im3_bench.sweeps");

  // Each generator's absolute level calibration is off by a fixed amount —
  // a property of the hardware, drawn from a salted stream so it is stable
  // across sweeps of the same bench.
  numeric::Rng gen_rng(settings_.seed ^ kGenSalt);
  const double gen1_err_db = settings_.gen_level_sigma_db * gen_rng.normal();
  const double gen2_err_db = settings_.gen_level_sigma_db * gen_rng.normal();
  // two_tone_point drives both tones at one level; the effective drive
  // error is the mean of the two generators' errors.
  const double level_err_db = 0.5 * (gen1_err_db + gen2_err_db);

  nonlinear::TwoToneOptions opt;
  opt.f1_hz = settings_.f1_hz;
  opt.f2_hz = settings_.f2_hz;

  const double step =
      (settings_.p_stop_dbm - settings_.p_start_dbm) /
      static_cast<double>(settings_.n_points - 1);

  std::vector<Im3Point> points = numeric::parallel_map(
      threads, settings_.n_points, [&](std::size_t i) {
        numeric::Rng rng = root_.split(sweep).split(i);
        const double p_set =
            settings_.p_start_dbm + step * static_cast<double>(i);
        // Draw order: level jitter, fundamental reading, IM3 reading.
        const double p_actual =
            p_set + level_err_db + settings_.gen_jitter_db * rng.normal();
        const nonlinear::TwoTonePoint sim =
            nonlinear::two_tone_point(lna, p_actual, opt);
        Im3Point out;
        out.p_set_dbm = p_set;
        out.p_fund_dbm =
            detected_dbm(sim.p_fund_dbm, settings_.sa_floor_dbm,
                         settings_.sa_reading_sigma_db, rng);
        out.p_im3_dbm =
            detected_dbm(sim.p_im3_dbm, settings_.sa_floor_dbm,
                         settings_.sa_reading_sigma_db, rng);
        return out;
      });

  // Extraction: only drives whose IM3 line sits well clear of the floor
  // are trusted; the intercept comes from the LOWEST clean drive, where
  // the cubic asymptote holds best.
  const double clean_dbm = settings_.sa_floor_dbm + 10.0;
  Im3Report report;
  report.points = std::move(points);

  const Im3Point* lowest_clean = nullptr;
  for (const Im3Point& p : report.points) {
    if (p.p_im3_dbm > clean_dbm) {
      lowest_clean = &p;
      break;
    }
  }
  if (lowest_clean == nullptr) {
    throw std::runtime_error(
        "Im3Bench: every IM3 line is buried in the analyzer floor; "
        "raise the drive range");
  }
  report.oip3_dbm = lowest_clean->p_fund_dbm +
                    0.5 * (lowest_clean->p_fund_dbm - lowest_clean->p_im3_dbm);
  report.gain_db = lowest_clean->p_fund_dbm - lowest_clean->p_set_dbm;
  report.iip3_dbm = report.oip3_dbm - report.gain_db;

  // IM3 slope from a least-squares line over the clean points (expect ~3
  // dB/dB while the cubic term dominates).
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  std::size_t n = 0;
  for (const Im3Point& p : report.points) {
    if (p.p_im3_dbm <= clean_dbm) continue;
    sx += p.p_set_dbm;
    sy += p.p_im3_dbm;
    sxx += p.p_set_dbm * p.p_set_dbm;
    sxy += p.p_set_dbm * p.p_im3_dbm;
    ++n;
  }
  if (n >= 2) {
    const double denom = static_cast<double>(n) * sxx - sx * sx;
    report.im3_slope =
        (static_cast<double>(n) * sxy - sx * sy) / denom;
  }
  return report;
}

}  // namespace gnsslna::lab
