// Virtual two-tone IM3 test set.
//
// Two signal generators (each with a systematic level-calibration error and
// a per-setting level jitter) drive the DUT; a spectrum analyzer measures
// the fundamental and 2f1-f2 lines through its own noise floor and reading
// jitter.  The DUT physics comes from nonlinear/two_tone.* — this bench
// wraps it in the instrument imperfections and re-extracts the intercept
// from the detected lines the way an operator would:
//
//   OIP3 = P_fund + (P_fund - P_im3) / 2      (at the lowest clean drive)
//
// Output-referring the intercept makes it first-order insensitive to the
// generators' absolute level error (both detected lines shift together),
// which is why benches quote OIP3 rather than IIP3; IIP3 is derived from
// the measured gain and inherits the level error.
#pragma once

#include <cstdint>
#include <vector>

#include "amplifier/lna.h"
#include "lab/instrument.h"

namespace gnsslna::lab {

struct Im3BenchSettings {
  double f1_hz = 1575.0e6;
  double f2_hz = 1576.0e6;
  double p_start_dbm = -40.0;      ///< lowest drive per tone
  double p_stop_dbm = -25.0;       ///< highest drive per tone
  std::size_t n_points = 6;
  double gen_level_sigma_db = 0.05;  ///< per-generator calibration error
  double gen_jitter_db = 0.01;       ///< per-setting level repeatability
  double sa_floor_dbm = -115.0;      ///< analyzer displayed noise floor
  double sa_reading_sigma_db = 0.03; ///< per-line reading jitter
  std::uint64_t seed = 0x13B37;
};

/// Detected spectrum lines at one drive setting.
struct Im3Point {
  double p_set_dbm = 0.0;    ///< what the operator dialed in (per tone)
  double p_fund_dbm = 0.0;   ///< detected fundamental line
  double p_im3_dbm = 0.0;    ///< detected 2f1-f2 line
};

struct Im3Report {
  std::vector<Im3Point> points;
  double oip3_dbm = 0.0;     ///< intercept from the lowest clean drive
  double iip3_dbm = 0.0;     ///< oip3 - measured gain
  double gain_db = 0.0;      ///< detected fundamental gain at lowest drive
  double im3_slope = 0.0;    ///< least-squares slope of the IM3 line (dB/dB)
};

class Im3Bench {
 public:
  explicit Im3Bench(Im3BenchSettings settings);

  /// Runs the drive sweep against the DUT and extracts the intercept from
  /// the detected lines.  Points below the analyzer floor are kept in the
  /// report but excluded from extraction.
  Im3Report measure(const amplifier::LnaDesign& lna, std::size_t threads = 1);

 private:
  Im3BenchSettings settings_;
  numeric::Rng root_;
  std::uint64_t sweep_counter_ = 0;
};

}  // namespace gnsslna::lab
