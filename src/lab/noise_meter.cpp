#include "lab/noise_meter.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "numeric/parallel.h"
#include "obs/obs.h"
#include "rf/noise.h"
#include "rf/units.h"

namespace gnsslna::lab {

namespace {

constexpr std::uint64_t kEnrSalt = 0x9D53F1C27A88B061ULL;

/// Equivalent voltage PSD [V^2/Hz] of temperature T at the reference
/// impedance: a matched z0 source at T puts k T z0 across the load.
double psd_of_temperature(double t_k) {
  return rf::kBoltzmann * t_k * rf::kZ0;
}

}  // namespace

double NoiseMeterSettings::nf_uncertainty_db(double gain_db) const {
  // First-order error budget, root-sum-squared and returned as a ~3-sigma
  // bound.  ENR error maps ~1:1 into NF for a hot-dominated Y factor; each
  // of the four detector readings contributes ~Y/(Y-1) ~ 1.8x its jitter;
  // the cold-switch jitter enters relative to T0.  The receiver's residual
  // second-stage term scales down with DUT gain.
  const double enr = enr_error_sigma_db;
  const double det = 2.5 * detector_sigma_db;
  const double cold = 10.0 * std::log10(1.0 + t_cold_jitter_k / rf::kT0);
  const double rss = std::sqrt(enr * enr + det * det + cold * cold);
  const double t_rx = rf::kT0 * (rf::ratio_from_db(receiver_nf_db) - 1.0);
  const double second_stage =
      1.0 + t_rx / (rf::ratio_from_db(gain_db) * rf::kT0);
  return 3.0 * rss * second_stage;
}

NoiseFigureMeter::NoiseFigureMeter(NoiseMeterSettings settings,
                                   std::vector<double> grid_hz)
    : settings_(std::move(settings)),
      grid_(std::move(grid_hz)),
      root_(settings_.seed) {
  if (grid_.empty()) {
    throw std::invalid_argument("NoiseFigureMeter: empty frequency grid");
  }
}

NoiseFigurePoint NoiseFigureMeter::y_factor_point(
    std::size_t point, std::uint64_t sweep,
    const std::function<circuit::NoiseResult(double, double)>& psd) const {
  const double f = grid_[point];
  numeric::Rng rng = root_.split(sweep).split(point);

  // The source's TRUE excess noise differs from the printed table by a
  // per-frequency systematic error (a property of the diode, stable
  // across sweeps — hence its own salted stream, not the sweep stream).
  const double enr_true_db =
      settings_.enr.enr_db(f) +
      settings_.enr_error_sigma_db *
          numeric::Rng(settings_.seed ^ kEnrSalt).split(point).normal();

  const double t_rx_true =
      rf::kT0 * (rf::ratio_from_db(settings_.receiver_nf_db) - 1.0);
  const auto t_cold_switch = [&] {
    return settings_.t_cold_k + settings_.t_cold_jitter_k * rng.normal();
  };
  const auto detector = [&](double power) {
    return power * rf::ratio_from_db(settings_.detector_sigma_db *
                                     rng.normal());
  };
  const auto t_hot_of = [&](double t_cold_actual) {
    return rf::kT0 * rf::ratio_from_db(enr_true_db) + t_cold_actual;
  };

  // CALIBRATE: source straight into the receiver (draw order fixed:
  // cold switch, hot switch, then the two detector readings).
  const double tc_cal_cold = t_cold_switch();
  const double tc_cal_hot = t_cold_switch();
  const double p_cal_cold =
      detector(psd_of_temperature(tc_cal_cold) + psd_of_temperature(t_rx_true));
  const double p_cal_hot = detector(psd_of_temperature(t_hot_of(tc_cal_hot)) +
                                    psd_of_temperature(t_rx_true));

  // MEASURE: DUT inserted between source and receiver.
  const double tc_m_cold = t_cold_switch();
  const double tc_m_hot = t_cold_switch();
  const double p_m_cold = detector(psd(f, tc_m_cold).output_noise_psd +
                                   psd_of_temperature(t_rx_true));
  const double p_m_hot = detector(psd(f, t_hot_of(tc_m_hot)).output_noise_psd +
                                  psd_of_temperature(t_rx_true));

  // CORRECT — using only the BELIEVED quantities (printed ENR, nominal
  // cold temperature), the way the instrument's firmware must.
  const double t_hot_b =
      rf::kT0 * rf::ratio_from_db(settings_.enr.enr_db(f)) + settings_.t_cold_k;
  const double t_cold_b = settings_.t_cold_k;

  const double y_cal = p_cal_hot / p_cal_cold;
  const double t_rx_est = (t_hot_b - y_cal * t_cold_b) / (y_cal - 1.0);

  const double y_m = p_m_hot / p_m_cold;
  const double t_sys = (t_hot_b - y_m * t_cold_b) / (y_m - 1.0);
  const double gain = (p_m_hot - p_m_cold) / (p_cal_hot - p_cal_cold);

  const double t_dut = t_sys - t_rx_est / gain;

  NoiseFigurePoint out;
  out.frequency_hz = f;
  out.nf_db = rf::noise_figure_db(1.0 + std::max(t_dut, 0.0) / rf::kT0);
  out.gain_db = rf::db_from_ratio(gain);
  out.y_factor_db = rf::db_from_ratio(y_m);
  out.t_receiver_k = t_rx_est;
  return out;
}

std::vector<NoiseFigurePoint> NoiseFigureMeter::measure_nf(
    const TwoPortDut& dut, std::size_t threads) {
  if (!dut.noise) {
    throw std::invalid_argument("measure_nf: DUT has no noise closure");
  }
  const std::uint64_t sweep = sweep_counter_++;
  GNSSLNA_OBS_COUNT("lab.noise_meter.sweeps");
  return numeric::parallel_map(threads, grid_.size(), [&](std::size_t i) {
    return y_factor_point(i, sweep, dut.noise);
  });
}

rf::NoiseSweep NoiseFigureMeter::measure_noise_parameters(
    const TwoPortDut& dut, std::size_t n_states, double ring_radius,
    std::size_t threads) {
  if (!dut.noise_pull) {
    throw std::invalid_argument(
        "measure_noise_parameters: DUT cannot be source-pulled");
  }
  if (n_states < 5) {
    throw std::invalid_argument(
        "measure_noise_parameters: need >= 5 source states");
  }
  if (ring_radius <= 0.0 || ring_radius >= 1.0) {
    throw std::invalid_argument(
        "measure_noise_parameters: ring_radius must be in (0, 1)");
  }

  // Source states: the matched point plus a ring — the standard
  // noise-parameter tuner pattern (mirrors amplifier_noise_parameters).
  std::vector<Complex> gammas;
  gammas.reserve(n_states);
  gammas.push_back({0.0, 0.0});
  for (std::size_t k = 0; k + 1 < n_states; ++k) {
    const double ang = 2.0 * std::numbers::pi * static_cast<double>(k) /
                       static_cast<double>(n_states - 1);
    gammas.push_back(ring_radius * Complex{std::cos(ang), std::sin(ang)});
  }

  // Each tuner position is its own measurement sweep (its own reading
  // noise); frequencies fan out inside each position.
  std::vector<std::vector<NoiseFigurePoint>> by_state;
  by_state.reserve(gammas.size());
  for (const Complex gamma : gammas) {
    const std::uint64_t sweep = sweep_counter_++;
    GNSSLNA_OBS_COUNT("lab.noise_meter.sweeps");
    const Complex zs = rf::z_from_gamma(gamma, rf::kZ0);
    const auto psd = [&dut, zs](double f, double t_source) {
      return dut.noise_pull(f, zs, t_source);
    };
    by_state.push_back(
        numeric::parallel_map(threads, grid_.size(), [&](std::size_t i) {
          return y_factor_point(i, sweep, psd);
        }));
  }

  rf::NoiseSweep out;
  out.reserve(grid_.size());
  for (std::size_t i = 0; i < grid_.size(); ++i) {
    std::vector<rf::SourcePullPoint> pts;
    pts.reserve(gammas.size());
    for (std::size_t k = 0; k < gammas.size(); ++k) {
      pts.push_back(
          {gammas[k], rf::noise_factor_from_db(by_state[k][i].nf_db)});
    }
    out.push_back(rf::fit_noise_parameters(pts, grid_[i]));
  }
  return out;
}

}  // namespace gnsslna::lab
