#include "lab/vna.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "numeric/matrix.h"
#include "numeric/parallel.h"
#include "obs/obs.h"
#include "rf/units.h"

namespace gnsslna::lab {

namespace {

/// Salt constants separating the independent deterministic streams derived
/// from one instrument seed.
constexpr std::uint64_t kTermsSalt = 0x7E2A5F0FD315ECB1ULL;
constexpr std::uint64_t kDriftSalt = 0x41C64E6DA3BC0074ULL;

Complex unit_phasor(numeric::Rng& rng) {
  const double phi = rng.uniform(0.0, 2.0 * std::numbers::pi);
  return {std::cos(phi), std::sin(phi)};
}

/// A reflective/leakage term: nominal magnitude from the dB spec with a
/// +-40% population spread, uniformly random phase.
Complex leakage_term(double level_db, numeric::Rng& rng) {
  const double mag = rf::mag_from_db(level_db) * (0.6 + 0.8 * rng.uniform());
  return mag * unit_phasor(rng);
}

/// A tracking term: unity nominal with Gaussian magnitude and phase error.
Complex tracking_term(double mag_sigma, double phase_sigma_deg,
                      numeric::Rng& rng) {
  const double mag = 1.0 + mag_sigma * rng.normal();
  const double phase =
      phase_sigma_deg * rng.normal() * std::numbers::pi / 180.0;
  return mag * Complex{std::cos(phase), std::sin(phase)};
}

}  // namespace

Vna::Vna(VnaSettings settings, std::vector<double> grid_hz)
    : settings_(settings),
      grid_(std::move(grid_hz)),
      root_(settings.seed) {
  if (grid_.empty()) {
    throw std::invalid_argument("Vna: empty frequency grid");
  }
  for (std::size_t i = 1; i < grid_.size(); ++i) {
    if (grid_[i] <= grid_[i - 1]) {
      throw std::invalid_argument("Vna: grid must be ascending");
    }
  }
}

void Vna::set_fixture(std::function<rf::SParams(double)> input,
                      std::function<rf::SParams(double)> output) {
  if (static_cast<bool>(input) != static_cast<bool>(output)) {
    throw std::invalid_argument(
        "Vna::set_fixture: provide both halves or neither");
  }
  fixture_in_ = std::move(input);
  fixture_out_ = std::move(output);
}

TwelveTermErrors Vna::true_terms(std::size_t point) const {
  // Pure function of (seed, point): the hardware's error boxes do not
  // change between sweeps (drift is applied on top, see drifted_terms).
  numeric::Rng rng = numeric::Rng(settings_.seed ^ kTermsSalt).split(point);
  TwelveTermErrors e;
  e.e00 = leakage_term(settings_.directivity_db, rng);
  e.e11f = leakage_term(settings_.source_match_db, rng);
  e.e10e01 = tracking_term(settings_.tracking_mag_sigma,
                           settings_.tracking_phase_sigma_deg, rng);
  e.e22f = leakage_term(settings_.load_match_db, rng);
  e.e10e32 = tracking_term(settings_.tracking_mag_sigma,
                           settings_.tracking_phase_sigma_deg, rng);
  e.e30 = leakage_term(settings_.crosstalk_db, rng);
  e.e33 = leakage_term(settings_.directivity_db, rng);
  e.e22r = leakage_term(settings_.source_match_db, rng);
  e.e23e32 = tracking_term(settings_.tracking_mag_sigma,
                           settings_.tracking_phase_sigma_deg, rng);
  e.e11r = leakage_term(settings_.load_match_db, rng);
  e.e23e01 = tracking_term(settings_.tracking_mag_sigma,
                           settings_.tracking_phase_sigma_deg, rng);
  e.e03 = leakage_term(settings_.crosstalk_db, rng);
  return e;
}

TwelveTermErrors Vna::drifted_terms(std::size_t point,
                                    std::uint64_t sweep) const {
  TwelveTermErrors e = true_terms(point);
  if (settings_.drift_per_sweep <= 0.0 || sweep == 0) return e;
  // Slow receiver-chain drift: the four tracking products wander by a
  // per-frequency direction scaled with elapsed sweeps (thermal ramp).
  numeric::Rng rng = numeric::Rng(settings_.seed ^ kDriftSalt).split(point);
  const double scale = settings_.drift_per_sweep * static_cast<double>(sweep);
  const auto drift = [&](Complex& term) {
    term *= 1.0 + scale * rng.normal();
  };
  drift(e.e10e01);
  drift(e.e10e32);
  drift(e.e23e32);
  drift(e.e23e01);
  return e;
}

rf::SParams Vna::observe(const rf::SParams& s_true, std::uint64_t sweep,
                         std::size_t point) const {
  const TwelveTermErrors e = drifted_terms(point, sweep);
  const Complex det = s_true.determinant();

  rf::SParams m = s_true;  // carries frequency_hz / z0 through
  // Forward direction: port 1 driven, port 2 terminated in the (imperfect)
  // forward load match.
  const Complex df = 1.0 - e.e11f * s_true.s11 - e.e22f * s_true.s22 +
                     e.e11f * e.e22f * det;
  m.s11 = e.e00 + e.e10e01 * (s_true.s11 - e.e22f * det) / df;
  m.s21 = e.e30 + e.e10e32 * s_true.s21 / df;
  // Reverse direction.
  const Complex dr = 1.0 - e.e22r * s_true.s22 - e.e11r * s_true.s11 +
                     e.e22r * e.e11r * det;
  m.s22 = e.e33 + e.e23e32 * (s_true.s22 - e.e11r * det) / dr;
  m.s12 = e.e03 + e.e23e01 * s_true.s12 / dr;

  numeric::Rng rng = root_.split(sweep).split(point);
  settings_.trace.corrupt(m, rng);
  return m;
}

Complex Vna::observe_reflection(Complex gamma, int port, std::uint64_t sweep,
                                std::size_t point) const {
  const TwelveTermErrors e = drifted_terms(point, sweep);
  const Complex e_dir = port == 0 ? e.e00 : e.e33;
  const Complex e_match = port == 0 ? e.e11f : e.e22r;
  const Complex e_track = port == 0 ? e.e10e01 : e.e23e32;
  const Complex m = e_dir + e_track * gamma / (1.0 - e_match * gamma);
  numeric::Rng rng = root_.split(sweep).split(point);
  return settings_.trace.corrupt(m, rng);
}

SoltCalibration Vna::calibrate(std::size_t threads) {
  // Eight standard connections, each a sweep (order fixed by convention):
  // short/open/load on port 1, short/open/load on port 2, thru, isolation.
  const std::uint64_t s_short1 = sweep_counter_++;
  const std::uint64_t s_open1 = sweep_counter_++;
  const std::uint64_t s_load1 = sweep_counter_++;
  const std::uint64_t s_short2 = sweep_counter_++;
  const std::uint64_t s_open2 = sweep_counter_++;
  const std::uint64_t s_load2 = sweep_counter_++;
  const std::uint64_t s_thru = sweep_counter_++;
  const std::uint64_t s_isol = sweep_counter_++;
  GNSSLNA_OBS_COUNT_N("lab.vna.sweeps", 8);

  SoltCalibration cal;
  cal.grid_hz = grid_;
  cal.terms = numeric::parallel_map(
      threads, grid_.size(), [&](std::size_t i) -> TwelveTermErrors {
        // --- one-port SOL solve, per port ------------------------------
        // Bilinear reading model m = (a + b G) / (1 - c G) with a = e_dir,
        // c = e_match, b = e_track - a c; three standards give the linear
        // system a + G b + (m G) c = m.
        const auto solve_sol = [&](int port, std::uint64_t sw_short,
                                   std::uint64_t sw_open,
                                   std::uint64_t sw_load, Complex& e_dir,
                                   Complex& e_match, Complex& e_track) {
          const Complex g[3] = {{-1.0, 0.0}, {1.0, 0.0}, {0.0, 0.0}};
          const Complex m[3] = {
              observe_reflection(g[0], port, sw_short, i),
              observe_reflection(g[1], port, sw_open, i),
              observe_reflection(g[2], port, sw_load, i)};
          numeric::ComplexMatrix sys(3, 3);
          std::vector<Complex> rhs(3);
          for (int k = 0; k < 3; ++k) {
            sys(k, 0) = {1.0, 0.0};
            sys(k, 1) = g[k];
            sys(k, 2) = m[k] * g[k];
            rhs[k] = m[k];
          }
          const std::vector<Complex> abc = numeric::solve(sys, rhs);
          e_dir = abc[0];
          e_match = abc[2];
          e_track = abc[1] + abc[0] * abc[2];
        };

        TwelveTermErrors e;
        solve_sol(0, s_short1, s_open1, s_load1, e.e00, e.e11f, e.e10e01);
        solve_sol(1, s_short2, s_open2, s_load2, e.e33, e.e22r, e.e23e32);

        // --- isolation: matched loads on both ports (the S = 0 two-port);
        // the transmission channels then read exactly the crosstalk.
        {
          rf::SParams zero;
          zero.frequency_hz = grid_[i];
          const rf::SParams m0 = observe(zero, s_isol, i);
          e.e30 = m0.s21;
          e.e03 = m0.s12;
        }

        // --- thru: load match + transmission tracking ------------------
        const rf::SParams mt = observe(rf::s_identity(grid_[i]), s_thru, i);
        const Complex x_f = (mt.s11 - e.e00) / e.e10e01;
        e.e22f = x_f / (1.0 + x_f * e.e11f);
        e.e10e32 = (mt.s21 - e.e30) * (1.0 - e.e11f * e.e22f);
        const Complex x_r = (mt.s22 - e.e33) / e.e23e32;
        e.e11r = x_r / (1.0 + x_r * e.e22r);
        e.e23e01 = (mt.s12 - e.e03) * (1.0 - e.e22r * e.e11r);
        return e;
      });
  return cal;
}

rf::SParams Vna::correct(const rf::SParams& raw, const TwelveTermErrors& e) {
  const Complex n11 = (raw.s11 - e.e00) / e.e10e01;
  const Complex n21 = (raw.s21 - e.e30) / e.e10e32;
  const Complex n22 = (raw.s22 - e.e33) / e.e23e32;
  const Complex n12 = (raw.s12 - e.e03) / e.e23e01;
  const Complex d = (1.0 + n11 * e.e11f) * (1.0 + n22 * e.e22r) -
                    n21 * n12 * e.e22f * e.e11r;
  rf::SParams s = raw;
  s.s11 = (n11 * (1.0 + n22 * e.e22r) - e.e22f * n21 * n12) / d;
  s.s21 = n21 * (1.0 + n22 * (e.e22r - e.e22f)) / d;
  s.s12 = n12 * (1.0 + n11 * (e.e11f - e.e11r)) / d;
  s.s22 = (n22 * (1.0 + n11 * e.e11f) - e.e11r * n21 * n12) / d;
  return s;
}

rf::SParams Vna::embedded(const TwoPortDut& dut, std::size_t point) const {
  const double f = grid_[point];
  rf::SParams s = dut.s(f);
  if (fixture_in_) {
    s = rf::cascade(fixture_in_(f), rf::cascade(s, fixture_out_(f)));
  }
  return s;
}

VnaMeasurement Vna::measure(const TwoPortDut& dut, const SoltCalibration& cal,
                            std::size_t threads) {
  if (cal.grid_hz != grid_) {
    throw std::invalid_argument(
        "Vna::measure: calibration grid does not match the instrument grid");
  }
  if (!dut.s) {
    throw std::invalid_argument("Vna::measure: DUT has no S-closure");
  }
  const std::uint64_t sweep = sweep_counter_++;
  GNSSLNA_OBS_COUNT("lab.vna.sweeps");

  VnaMeasurement out;
  struct Stages {
    rf::SParams raw, corrected, dut;
  };
  const std::vector<Stages> stages = numeric::parallel_map(
      threads, grid_.size(), [&](std::size_t i) -> Stages {
        Stages st;
        st.raw = observe(embedded(dut, i), sweep, i);
        st.corrected = correct(st.raw, cal.terms[i]);
        st.dut = fixture_in_
                     ? rf::deembed(st.corrected, fixture_in_(grid_[i]),
                                   fixture_out_(grid_[i]))
                     : st.corrected;
        return st;
      });
  out.raw.reserve(stages.size());
  out.corrected.reserve(stages.size());
  out.dut.reserve(stages.size());
  for (const Stages& st : stages) {
    out.raw.push_back(st.raw);
    out.corrected.push_back(st.corrected);
    out.dut.push_back(st.dut);
  }
  return out;
}

}  // namespace gnsslna::lab
