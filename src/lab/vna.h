// Virtual two-port vector network analyzer.
//
// The instrument observes a DUT through the classic 12-term error model —
// per port: directivity, source match, reflection tracking; per direction:
// load match, transmission tracking, crosstalk — plus receiver trace noise
// on every reading and a slow tracking drift between sweeps.  Raw readings
// are therefore WRONG by several percent; the instrument only becomes
// accurate after SOLT calibration (short/open/load on each port, a thru,
// and an isolation step), which solves the error terms from measured
// standards and applies the standard 12-term correction:
//
//   forward model (port 1 driven), D = 1 - e11 S11 - e22' S22 + e11 e22' dS:
//     S11m = e00 + e_rt (S11 - e22' dS) / D,   S21m = e30 + e_tt S21 / D
//   (mirror set for the reverse direction), and the correction
//     n11 = (S11m-e00)/e_rt, ...               (normalized readings)
//     S11 = [n11 (1 + n22 e22r) - e22f n21 n12] / D_c, etc.
//
// Fixture halves (e.g. microstrip launchers) can be interposed between the
// calibrated reference planes and the DUT; measure() then also de-embeds
// them (rf::deembed) from the corrected data, exercising the full
// raw -> corrected -> de-embedded chain a real bench runs.
//
// Determinism: error-term truth is a pure function of (seed, point index);
// reading noise of (seed, sweep counter, point index).  Per-frequency work
// fans out through numeric/parallel.h; results are bit-identical for any
// thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "lab/instrument.h"
#include "rf/sweep.h"

namespace gnsslna::lab {

/// One frequency point's 12-term error set (forward + reverse).
struct TwelveTermErrors {
  // Forward (port 1 driven).
  Complex e00;     ///< port-1 directivity
  Complex e11f;    ///< port-1 source match
  Complex e10e01;  ///< port-1 reflection tracking
  Complex e22f;    ///< forward load match (at port 2)
  Complex e10e32;  ///< forward transmission tracking
  Complex e30;     ///< forward crosstalk
  // Reverse (port 2 driven).
  Complex e33;     ///< port-2 directivity
  Complex e22r;    ///< port-2 source match
  Complex e23e32;  ///< port-2 reflection tracking
  Complex e11r;    ///< reverse load match (at port 1)
  Complex e23e01;  ///< reverse transmission tracking
  Complex e03;     ///< reverse crosstalk
};

struct VnaSettings {
  double directivity_db = -35.0;        ///< |e00|, |e33|
  double source_match_db = -28.0;       ///< |e11f|, |e22r|
  double load_match_db = -30.0;         ///< |e22f|, |e11r|
  double tracking_mag_sigma = 0.04;     ///< tracking magnitude error (rel.)
  double tracking_phase_sigma_deg = 4.0;
  double crosstalk_db = -100.0;         ///< |e30|, |e03|
  TraceNoise trace{2e-4, 0.0, 10.0};    ///< receiver noise per reading
  double drift_per_sweep = 1e-5;        ///< relative tracking drift / sweep
  std::uint64_t seed = 0xD0BE5;
};

/// Solved error terms per grid point — what "pressing CAL" stores.
struct SoltCalibration {
  std::vector<double> grid_hz;
  std::vector<TwelveTermErrors> terms;
};

/// One VNA DUT measurement: every processing stage kept for comparison.
struct VnaMeasurement {
  rf::SweepData raw;        ///< uncorrected readings (error terms + noise)
  rf::SweepData corrected;  ///< after 12-term correction (fixture still in)
  rf::SweepData dut;        ///< corrected + fixture de-embedded
};

class Vna {
 public:
  /// The instrument is configured for a fixed frequency grid — like a real
  /// VNA, calibration and measurement must share it.
  Vna(VnaSettings settings, std::vector<double> grid_hz);

  /// Interposes known fixture halves between the calibrated reference
  /// planes and the DUT.  Pass empty functions to remove.
  void set_fixture(std::function<rf::SParams(double)> input,
                   std::function<rf::SParams(double)> output);

  /// Full SOLT calibration from simulated standards (ideal, exactly-known
  /// definitions: G_short = -1, G_open = +1, G_load = 0, ideal thru).
  /// Eight standard connections = eight sweeps of reading noise and drift.
  SoltCalibration calibrate(std::size_t threads = 1);

  /// Measures a DUT through the (imperfect) receivers and applies the
  /// 12-term correction from `cal`, then de-embeds the fixture.
  VnaMeasurement measure(const TwoPortDut& dut, const SoltCalibration& cal,
                         std::size_t threads = 1);

  /// The TRUE error terms at a grid point (for tests: the calibration
  /// should recover these to within the trace-noise floor).
  TwelveTermErrors true_terms(std::size_t point) const;

  /// Applies the standard 12-term correction to one raw reading.
  static rf::SParams correct(const rf::SParams& raw,
                             const TwelveTermErrors& e);

  const std::vector<double>& grid() const { return grid_; }
  std::uint64_t sweeps_taken() const { return sweep_counter_; }

 private:
  /// Error terms including the tracking drift accumulated by sweep `sweep`.
  TwelveTermErrors drifted_terms(std::size_t point, std::uint64_t sweep) const;

  /// Forward+reverse observation of a true S through the error model, with
  /// reading noise drawn from the (sweep, point) stream.
  rf::SParams observe(const rf::SParams& s_true, std::uint64_t sweep,
                      std::size_t point) const;

  /// One-port standard observation on the given port (0 or 1).
  Complex observe_reflection(Complex gamma, int port, std::uint64_t sweep,
                             std::size_t point) const;

  /// Embeds the DUT in the configured fixture at grid point i.
  rf::SParams embedded(const TwoPortDut& dut, std::size_t point) const;

  VnaSettings settings_;
  std::vector<double> grid_;
  numeric::Rng root_;           ///< reading-noise root (split per sweep)
  std::uint64_t sweep_counter_ = 0;
  std::function<rf::SParams(double)> fixture_in_, fixture_out_;
};

}  // namespace gnsslna::lab
