// Direct-retabulation writers for frequency-batched plans.
//
// The batched steady state bypasses the Netlist closures: each writer
// fills a plan value table with exactly what the corresponding closure
// builder in netlist.cpp (or noisy_twoport.cpp / the FET closures in
// lna.cpp) would have returned at every grid frequency, so the direct
// path stays bit-identical to sync()-driven retabulation (pinned by
// tests/test_batched.cpp).  Each writer returns the number of tables
// rewritten, matching CompiledNetlist::sync's retabulation count.
//
// Shared by BandEvaluator (optimizer loops) and the yield engine's
// YieldTrialEvaluator (tolerance trials).  `noise_lanes` bounds how many
// leading grid lanes get their noise CSDs rewritten: noise data are only
// ever read for the in-band lanes (noise_sweep / noise_at stop at the
// band), so a caller that knows its band size can skip the stability
// lanes' CSDs without changing any produced figure.  The default rewrites
// every lane.
//
// Internal amplifier header, not part of the public API surface.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "circuit/batched.h"
#include "circuit/noisy_twoport.h"
#include "device/small_signal.h"
#include "microstrip/line.h"
#include "rf/twoport.h"
#include "rf/units.h"

namespace gnsslna::amplifier::planw {

inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

inline constexpr std::size_t kAllLanes =
    std::numeric_limits<std::size_t>::max();

/// Dispersive one-port (z_of(part) through add_lossy_impedance).  The
/// impedance model is evaluated once per lane and feeds both the stamp
/// and (for the first noise_lanes lanes) the thermal-noise CSD — the same
/// values the two closure tabulations would compute independently.
template <typename Part>
std::size_t write_lossy(circuit::BatchedPlan& plan,
                        const circuit::ElementRef& ref, const Part& part,
                        double temperature_k,
                        std::size_t noise_lanes = kAllLanes) {
  const std::vector<double>& grid = plan.grid();
  const circuit::BatchedPlan::StampView sv = plan.stamp_view(ref.element.index);
  const bool noisy = ref.noise_group != circuit::kNoNoiseGroup;
  const circuit::BatchedPlan::NoiseView nv =
      noisy ? plan.noise_view(ref.noise_group)
            : circuit::BatchedPlan::NoiseView{};
  for (std::size_t fi = 0; fi < sv.count; ++fi) {
    const circuit::Complex z = part.impedance(grid[fi]);
    if (std::abs(z) < 1e-12) {
      throw std::domain_error("add_lossy_impedance: near-short element");
    }
    const circuit::Complex y = 1.0 / z;
    sv.values[fi] = y;
    if (noisy && fi < noise_lanes) {
      nv.csd[fi] = circuit::Complex{
          4.0 * rf::kBoltzmann * temperature_k * std::max(0.0, y.real()), 0.0};
    }
  }
  return noisy ? 2 : 1;
}

inline std::size_t write_capacitor(circuit::BatchedPlan& plan,
                                   const circuit::ElementId& id,
                                   double farads) {
  if (farads <= 0.0) {
    throw std::invalid_argument("set_capacitor: capacitance must be positive");
  }
  const std::vector<double>& grid = plan.grid();
  const circuit::BatchedPlan::StampView sv = plan.stamp_view(id.index);
  for (std::size_t fi = 0; fi < sv.count; ++fi) {
    sv.values[fi] = circuit::Complex{0.0, kTwoPi * grid[fi] * farads};
  }
  return 1;
}

inline std::size_t write_inductor(circuit::BatchedPlan& plan,
                                  const circuit::ElementId& id,
                                  double henries) {
  if (henries <= 0.0) {
    throw std::invalid_argument("set_inductor: inductance must be positive");
  }
  const std::vector<double>& grid = plan.grid();
  const circuit::BatchedPlan::StampView sv = plan.stamp_view(id.index);
  for (std::size_t fi = 0; fi < sv.count; ++fi) {
    sv.values[fi] = circuit::Complex{0.0, -1.0 / (kTwoPi * grid[fi] * henries)};
  }
  return 1;
}

inline std::size_t write_resistor(circuit::BatchedPlan& plan,
                                  const circuit::ElementRef& ref, double ohms,
                                  double temperature_k,
                                  std::size_t noise_lanes = kAllLanes) {
  if (ohms <= 0.0) {
    throw std::invalid_argument("set_resistor: resistance must be positive");
  }
  const double g = 1.0 / ohms;
  const circuit::BatchedPlan::StampView sv = plan.stamp_view(ref.element.index);
  for (std::size_t fi = 0; fi < sv.count; ++fi) {  // 1: freq-independent
    sv.values[fi] = circuit::Complex{g, 0.0};
  }
  if (ref.noise_group == circuit::kNoNoiseGroup) return 1;
  const double psd = 4.0 * rf::kBoltzmann * temperature_k * g;
  const circuit::BatchedPlan::NoiseView nv = plan.noise_view(ref.noise_group);
  const std::size_t nn = std::min(noise_lanes, nv.count);
  for (std::size_t fi = 0; fi < nn; ++fi) {
    nv.csd[fi] = circuit::Complex{psd, 0.0};
  }
  return 2;
}

inline std::size_t write_line(
    circuit::BatchedPlan& plan, const circuit::ElementRef& ref,
    const microstrip::Line& line,
    const std::vector<microstrip::Line::Propagation>& prop,
    double temperature_k, std::size_t noise_lanes = kAllLanes) {
  // `prop` caches the length-independent dispersion curve of this line's
  // (substrate, width) over the plan grid; abcd_from(propagation(f)) is
  // bit-identical to abcd(f), so the written tables match the closure
  // path's exactly while skipping the dispersion-model re-evaluation.
  const circuit::BatchedPlan::TwoPortView tv =
      plan.twoport_view(ref.element.index);
  for (std::size_t fi = 0; fi < tv.count; ++fi) {
    tv.set(fi, rf::y_from_abcd(line.abcd_from(prop[fi])));
  }
  if (ref.noise_group == circuit::kNoNoiseGroup) return 1;
  const circuit::BatchedPlan::NoiseView nv = plan.noise_view(ref.noise_group);
  const std::size_t nn = std::min(noise_lanes, nv.count);
  for (std::size_t fi = 0; fi < nn; ++fi) {
    circuit::passive_twoport_csd_into(tv.values[fi], temperature_k,
                                      nv.csd + fi * 4);
  }
  return 2;
}

inline std::size_t write_fet(circuit::BatchedPlan& plan,
                             const circuit::ElementRef& ref,
                             const device::IntrinsicParams& ip,
                             const device::ExtrinsicParams& ex,
                             const device::NoiseTemperatures& nt,
                             std::size_t noise_lanes = kAllLanes) {
  const std::vector<double>& grid = plan.grid();
  const circuit::BatchedPlan::TwoPortView tv =
      plan.twoport_view(ref.element.index);
  const circuit::BatchedPlan::NoiseView nv = plan.noise_view(ref.noise_group);
  const std::size_t nn = std::min(noise_lanes, nv.count);
  for (std::size_t fi = 0; fi < tv.count; ++fi) {
    const rf::YParams yp = rf::y_from_s(device::fet_s_params(ip, ex, grid[fi]));
    tv.set(fi, yp);
    if (fi < nn) {
      const rf::NoiseParams np =
          device::pospieszalski_noise(ip, ex, nt, grid[fi]);
      circuit::noise_correlation_y_into(yp, np, nv.csd + fi * 4);
    }
  }
  return 2;
}

}  // namespace gnsslna::amplifier::planw
