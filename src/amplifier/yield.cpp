#include "amplifier/yield.h"

#include <algorithm>

#include "numeric/parallel.h"
#include "numeric/stats.h"

namespace gnsslna::amplifier {

namespace {

struct TrialOutcome {
  double nf_avg_db = 0.0;
  double gt_min_db = 0.0;
  bool pass = false;
};

}  // namespace

YieldReport monte_carlo_yield(const device::Phemt& device,
                              const AmplifierConfig& config,
                              const DesignVector& design,
                              const DesignGoals& goals, std::size_t n,
                              numeric::Rng& rng, ToleranceModel tolerances,
                              std::size_t threads) {
  if (n == 0) {
    throw std::invalid_argument("monte_carlo_yield: n must be >= 1");
  }
  AmplifierConfig base = config;
  base.resolve();
  const std::vector<double> band = LnaDesign::default_band();

  // One fork advances the caller's generator; every trial then derives its
  // own counter-based stream from that snapshot, so trial i sees the same
  // perturbations no matter which thread runs it or how many run at once.
  const numeric::Rng root = rng.fork();

  const std::vector<TrialOutcome> trials = numeric::parallel_map(
      threads, n, [&](std::size_t i) {
        numeric::Rng trial_rng = root.split(i);
        // Uniform within +-tol models a binned-and-sorted component
        // population; Gaussian models the etch/bias errors.
        const auto uniform_tol = [&](double nominal, double rel) {
          return nominal * (1.0 + rel * (2.0 * trial_rng.uniform() - 1.0));
        };

        DesignVector d = design;
        d.l_shunt_h = uniform_tol(d.l_shunt_h, tolerances.lc_relative);
        d.c_mid_f = uniform_tol(d.c_mid_f, tolerances.lc_relative);
        d.c_out_sh_f = uniform_tol(d.c_out_sh_f, tolerances.lc_relative);
        d.l_sdeg_h = uniform_tol(d.l_sdeg_h, tolerances.lc_relative);
        d.c_in_f = uniform_tol(d.c_in_f, tolerances.lc_relative);
        d.r_fb_ohm = uniform_tol(d.r_fb_ohm, 0.01);  // 1% thick film
        d.l_in_m += trial_rng.normal(0.0, tolerances.length_sigma_m);
        d.l_in2_m += trial_rng.normal(0.0, tolerances.length_sigma_m);
        d.l_out_m += trial_rng.normal(0.0, tolerances.length_sigma_m);
        d.l_out2_m += trial_rng.normal(0.0, tolerances.length_sigma_m);
        d.vgs += trial_rng.normal(0.0, tolerances.vbias_sigma);
        d.vds += trial_rng.normal(0.0, tolerances.vbias_sigma);

        AmplifierConfig cfg = base;
        cfg.substrate.epsilon_r =
            uniform_tol(cfg.substrate.epsilon_r, tolerances.er_relative);
        cfg.substrate.height_m =
            uniform_tol(cfg.substrate.height_m, tolerances.height_relative);
        cfg.w50_m = base.w50_m;  // the board is etched once: width is fixed

        TrialOutcome out;
        BandReport rep;
        try {
          rep = LnaDesign(device, cfg,
                          DesignVector::from_vector(
                              DesignVector::bounds().clamp(d.to_vector())))
                    .evaluate(band);
        } catch (const std::exception&) {
          out.nf_avg_db = 50.0;
          out.gt_min_db = -50.0;
          return out;
        }
        out.nf_avg_db = rep.nf_avg_db;
        out.gt_min_db = rep.gt_min_db;
        out.pass = rep.nf_avg_db <= goals.nf_goal_db &&
                   rep.gt_min_db >= goals.gain_goal_db &&
                   rep.s11_worst_db <= goals.s11_goal_db &&
                   rep.s22_worst_db <= goals.s22_goal_db &&
                   rep.mu_min >= goals.mu_margin;
        return out;
      });

  // Index-ordered reduction: identical statistics for any thread count.
  std::vector<double> nf_samples, gt_samples;
  nf_samples.reserve(n);
  gt_samples.reserve(n);
  std::size_t passes = 0;
  for (const TrialOutcome& t : trials) {
    nf_samples.push_back(t.nf_avg_db);
    gt_samples.push_back(t.gt_min_db);
    if (t.pass) ++passes;
  }

  YieldReport rep;
  rep.samples = n;
  rep.passes = passes;
  rep.pass_rate = static_cast<double>(passes) / static_cast<double>(n);
  rep.nf_avg_p95_db = numeric::percentile(nf_samples, 95.0);
  rep.gt_min_p5_db = numeric::percentile(gt_samples, 5.0);
  rep.nf_avg_mean_db = numeric::mean(nf_samples);
  rep.gt_min_mean_db = numeric::mean(gt_samples);
  return rep;
}

}  // namespace gnsslna::amplifier
