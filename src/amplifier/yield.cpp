#include "amplifier/yield.h"

#include <algorithm>

#include "numeric/stats.h"

namespace gnsslna::amplifier {

YieldReport monte_carlo_yield(const device::Phemt& device,
                              const AmplifierConfig& config,
                              const DesignVector& design,
                              const DesignGoals& goals, std::size_t n,
                              numeric::Rng& rng, ToleranceModel tolerances) {
  if (n == 0) {
    throw std::invalid_argument("monte_carlo_yield: n must be >= 1");
  }
  AmplifierConfig base = config;
  base.resolve();
  const std::vector<double> band = LnaDesign::default_band();

  std::vector<double> nf_samples, gt_samples;
  nf_samples.reserve(n);
  gt_samples.reserve(n);
  std::size_t passes = 0;

  // Uniform within +-tol models a binned-and-sorted component population;
  // Gaussian models the etch/bias errors.
  const auto uniform_tol = [&](double nominal, double rel) {
    return nominal * (1.0 + rel * (2.0 * rng.uniform() - 1.0));
  };

  for (std::size_t i = 0; i < n; ++i) {
    DesignVector d = design;
    d.l_shunt_h = uniform_tol(d.l_shunt_h, tolerances.lc_relative);
    d.c_mid_f = uniform_tol(d.c_mid_f, tolerances.lc_relative);
    d.c_out_sh_f = uniform_tol(d.c_out_sh_f, tolerances.lc_relative);
    d.l_sdeg_h = uniform_tol(d.l_sdeg_h, tolerances.lc_relative);
    d.c_in_f = uniform_tol(d.c_in_f, tolerances.lc_relative);
    d.r_fb_ohm = uniform_tol(d.r_fb_ohm, 0.01);  // 1% thick film
    d.l_in_m += rng.normal(0.0, tolerances.length_sigma_m);
    d.l_in2_m += rng.normal(0.0, tolerances.length_sigma_m);
    d.l_out_m += rng.normal(0.0, tolerances.length_sigma_m);
    d.l_out2_m += rng.normal(0.0, tolerances.length_sigma_m);
    d.vgs += rng.normal(0.0, tolerances.vbias_sigma);
    d.vds += rng.normal(0.0, tolerances.vbias_sigma);

    AmplifierConfig cfg = base;
    cfg.substrate.epsilon_r =
        uniform_tol(cfg.substrate.epsilon_r, tolerances.er_relative);
    cfg.substrate.height_m =
        uniform_tol(cfg.substrate.height_m, tolerances.height_relative);
    cfg.w50_m = base.w50_m;  // the board is etched once: width is fixed

    BandReport rep;
    try {
      rep = LnaDesign(device, cfg,
                      DesignVector::from_vector(
                          DesignVector::bounds().clamp(d.to_vector())))
                .evaluate(band);
    } catch (const std::exception&) {
      nf_samples.push_back(50.0);
      gt_samples.push_back(-50.0);
      continue;
    }
    nf_samples.push_back(rep.nf_avg_db);
    gt_samples.push_back(rep.gt_min_db);

    const bool pass = rep.nf_avg_db <= goals.nf_goal_db &&
                      rep.gt_min_db >= goals.gain_goal_db &&
                      rep.s11_worst_db <= goals.s11_goal_db &&
                      rep.s22_worst_db <= goals.s22_goal_db &&
                      rep.mu_min >= goals.mu_margin;
    if (pass) ++passes;
  }

  YieldReport rep;
  rep.samples = n;
  rep.passes = passes;
  rep.pass_rate = static_cast<double>(passes) / static_cast<double>(n);
  rep.nf_avg_p95_db = numeric::percentile(nf_samples, 95.0);
  rep.gt_min_p5_db = numeric::percentile(gt_samples, 5.0);
  rep.nf_avg_mean_db = numeric::mean(nf_samples);
  rep.gt_min_mean_db = numeric::mean(gt_samples);
  return rep;
}

}  // namespace gnsslna::amplifier
