#include "amplifier/yield.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <vector>

#include "amplifier/plan_writers.h"
#include "microstrip/discontinuity.h"
#include "numeric/parallel.h"
#include "numeric/stats.h"
#include "obs/obs.h"
#include "passives/catalog.h"
#include "rf/metrics.h"
#include "rf/units.h"

namespace gnsslna::amplifier {

namespace {

/// Cached design box: clamping must not allocate in the per-trial path.
const optimize::Bounds& design_bounds() {
  static const optimize::Bounds bounds = DesignVector::bounds();
  return bounds;
}

/// Componentwise clamp into DesignVector::bounds(), field order matching
/// to_vector() — exactly Bounds::clamp without the vector round trip.
void clamp_design(DesignVector& d) {
  const optimize::Bounds& b = design_bounds();
  const auto clamp_to = [&](double& v, std::size_t i) {
    if (v < b.lower[i]) v = b.lower[i];
    if (v > b.upper[i]) v = b.upper[i];
  };
  clamp_to(d.vgs, 0);
  clamp_to(d.vds, 1);
  clamp_to(d.l_in_m, 2);
  clamp_to(d.l_in2_m, 3);
  clamp_to(d.l_shunt_h, 4);
  clamp_to(d.c_mid_f, 5);
  clamp_to(d.l_out_m, 6);
  clamp_to(d.c_out_sh_f, 7);
  clamp_to(d.l_out2_m, 8);
  clamp_to(d.l_sdeg_h, 9);
  clamp_to(d.c_in_f, 10);
  clamp_to(d.r_fb_ohm, 11);
}

bool meets_goals(double nf_avg_db, double gt_min_db, double s11_worst_db,
                 double s22_worst_db, double mu_min,
                 const DesignGoals& goals) {
  return nf_avg_db <= goals.nf_goal_db && gt_min_db >= goals.gain_goal_db &&
         s11_worst_db <= goals.s11_goal_db &&
         s22_worst_db <= goals.s22_goal_db && mu_min >= goals.mu_margin;
}

TrialOutcome outcome_from(const BandReport& rep, const DesignGoals& goals) {
  TrialOutcome out;
  out.nf_avg_db = rep.nf_avg_db;
  out.gt_min_db = rep.gt_min_db;
  out.pass = meets_goals(rep.nf_avg_db, rep.gt_min_db, rep.s11_worst_db,
                         rep.s22_worst_db, rep.mu_min, goals);
  if (!std::isfinite(out.nf_avg_db) || !std::isfinite(out.gt_min_db)) {
    out = TrialOutcome{};
    out.failed = true;
  }
  return out;
}

/// The pre-engine reference path: a full LnaDesign + transient plan per
/// trial.  Kept live (options.reuse_plan == false) as the equivalence
/// reference the engine is pinned against, and as the benchmark baseline
/// for the per-sample speedup claim.
TrialOutcome rebuild_trial(const device::Phemt& device,
                           const AmplifierConfig& base,
                           const std::vector<double>& band,
                           const TrialDraw& draw, const DesignGoals& goals) {
  try {
    AmplifierConfig cfg = base;
    // Board perturbation only: w50_m stays at the resolved nominal (the
    // mask is etched once), so resolve() inside LnaDesign re-validates the
    // perturbed substrate without re-synthesizing widths.
    cfg.substrate = draw.substrate;
    const BandReport rep = LnaDesign(device, cfg, draw.design).evaluate(band);
    return outcome_from(rep, goals);
  } catch (const std::exception&) {
    TrialOutcome out;
    out.failed = true;
    return out;
  }
}

/// Fixed-point scale for the streaming sums: 2^24 keeps quantization at
/// ~6e-8 dB while int64 stays overflow-safe past 5e8 samples of |100| dB.
constexpr double kFixedScale = 16777216.0;

std::int64_t to_fixed(double v) { return std::llround(v * kFixedScale); }

/// Order-independent streaming statistics: integer counts, fixed-point
/// sums, exact extrema and fixed-grid histograms.  Any merge order (and
/// therefore any thread count / shard size) produces identical bits.
struct StreamingStats {
  std::uint64_t count = 0;
  std::uint64_t passes = 0;
  std::uint64_t failed = 0;
  std::int64_t nf_sum = 0, gt_sum = 0;
  double nf_min = std::numeric_limits<double>::infinity();
  double nf_max = -std::numeric_limits<double>::infinity();
  double gt_min = std::numeric_limits<double>::infinity();
  double gt_max = -std::numeric_limits<double>::infinity();
  /// [0] underflow, [1..bins] grid, [bins+1] overflow.
  std::vector<std::uint64_t> nf_bins, gt_bins;

  void init(std::size_t bins) {
    nf_bins.assign(bins + 2, 0);
    gt_bins.assign(bins + 2, 0);
  }

  static std::size_t bin_of(double v, double lo, double hi,
                            std::size_t bins) {
    if (v < lo) return 0;
    if (v >= hi) return bins + 1;
    const double x = (v - lo) / (hi - lo) * static_cast<double>(bins);
    std::size_t b = static_cast<std::size_t>(x);
    if (b >= bins) b = bins - 1;  // v just below hi after rounding
    return b + 1;
  }

  void add(const TrialOutcome& o, const YieldOptions& opt) {
    ++count;
    if (o.failed) {
      ++failed;
      return;
    }
    if (o.pass) ++passes;
    nf_sum += to_fixed(o.nf_avg_db);
    gt_sum += to_fixed(o.gt_min_db);
    nf_min = std::min(nf_min, o.nf_avg_db);
    nf_max = std::max(nf_max, o.nf_avg_db);
    gt_min = std::min(gt_min, o.gt_min_db);
    gt_max = std::max(gt_max, o.gt_min_db);
    const std::size_t bins = nf_bins.size() - 2;
    ++nf_bins[bin_of(o.nf_avg_db, opt.nf_hist_lo_db, opt.nf_hist_hi_db, bins)];
    ++gt_bins[bin_of(o.gt_min_db, opt.gt_hist_lo_db, opt.gt_hist_hi_db, bins)];
  }

  void merge(const StreamingStats& other) {
    count += other.count;
    passes += other.passes;
    failed += other.failed;
    nf_sum += other.nf_sum;
    gt_sum += other.gt_sum;
    nf_min = std::min(nf_min, other.nf_min);
    nf_max = std::max(nf_max, other.nf_max);
    gt_min = std::min(gt_min, other.gt_min);
    gt_max = std::max(gt_max, other.gt_max);
    for (std::size_t i = 0; i < nf_bins.size(); ++i) {
      nf_bins[i] += other.nf_bins[i];
      gt_bins[i] += other.gt_bins[i];
    }
  }
};

/// Percentile from a fixed-grid histogram: walk the cumulative counts to
/// the fractional rank and interpolate linearly inside the landing bin
/// (resolution = one bin width), clamped to the exact observed range.
/// The under/overflow bins interpolate over [vmin, lo] / [hi, vmax].
double hist_percentile(const std::vector<std::uint64_t>& bins, double lo,
                       double hi, std::uint64_t total, double p, double vmin,
                       double vmax) {
  const std::size_t nbins = bins.size() - 2;
  const double width = (hi - lo) / static_cast<double>(nbins);
  const double target = p / 100.0 * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t i = 0; i < bins.size(); ++i) {
    const double nb = static_cast<double>(bins[i]);
    if (nb > 0.0 && cum + nb >= target) {
      double blo, bhi;
      if (i == 0) {
        blo = std::min(vmin, lo);
        bhi = lo;
      } else if (i == bins.size() - 1) {
        blo = hi;
        bhi = std::max(vmax, hi);
      } else {
        blo = lo + static_cast<double>(i - 1) * width;
        bhi = blo + width;
      }
      const double frac = std::max(0.0, (target - cum)) / nb;
      const double x = blo + frac * (bhi - blo);
      return std::min(std::max(x, vmin), vmax);
    }
    cum += nb;
  }
  return vmax;
}

YieldReport report_from(const StreamingStats& s, std::size_t n,
                        const YieldOptions& opt) {
  YieldReport rep;
  rep.samples = n;
  rep.passes = s.passes;
  rep.failed_evals = s.failed;
  rep.pass_rate = static_cast<double>(s.passes) / static_cast<double>(n);
  const numeric::WilsonInterval ci = numeric::wilson_interval(s.passes, n);
  rep.pass_rate_ci95_lo = ci.lo;
  rep.pass_rate_ci95_hi = ci.hi;
  const std::uint64_t m = s.count - s.failed;
  if (m > 0) {
    const double inv = 1.0 / (kFixedScale * static_cast<double>(m));
    rep.nf_avg_mean_db = static_cast<double>(s.nf_sum) * inv;
    rep.gt_min_mean_db = static_cast<double>(s.gt_sum) * inv;
    rep.nf_avg_min_db = s.nf_min;
    rep.nf_avg_max_db = s.nf_max;
    rep.gt_min_min_db = s.gt_min;
    rep.gt_min_max_db = s.gt_max;
    rep.nf_avg_p95_db =
        hist_percentile(s.nf_bins, opt.nf_hist_lo_db, opt.nf_hist_hi_db, m,
                        95.0, s.nf_min, s.nf_max);
    rep.gt_min_p5_db =
        hist_percentile(s.gt_bins, opt.gt_hist_lo_db, opt.gt_hist_hi_db, m,
                        5.0, s.gt_min, s.gt_max);
  }
  return rep;
}

}  // namespace

TrialDraw pseudo_trial_draw(const numeric::Rng& root, std::uint64_t trial,
                            const DesignVector& nominal,
                            const microstrip::Substrate& substrate,
                            const ToleranceModel& tolerances) {
  numeric::Rng trial_rng = root.split(trial);
  // Uniform within +-tol models a binned-and-sorted component population;
  // Gaussian models the etch/bias errors.  The draw order is load-bearing:
  // lab::fabricate replicates it variate for variate.
  const auto uniform_tol = [&](double nominal_v, double rel) {
    return nominal_v * (1.0 + rel * (2.0 * trial_rng.uniform() - 1.0));
  };
  TrialDraw out{nominal, substrate};
  DesignVector& d = out.design;
  d.l_shunt_h = uniform_tol(d.l_shunt_h, tolerances.lc_relative);
  d.c_mid_f = uniform_tol(d.c_mid_f, tolerances.lc_relative);
  d.c_out_sh_f = uniform_tol(d.c_out_sh_f, tolerances.lc_relative);
  d.l_sdeg_h = uniform_tol(d.l_sdeg_h, tolerances.lc_relative);
  d.c_in_f = uniform_tol(d.c_in_f, tolerances.lc_relative);
  d.r_fb_ohm = uniform_tol(d.r_fb_ohm, 0.01);  // 1% thick film
  d.l_in_m += trial_rng.normal(0.0, tolerances.length_sigma_m);
  d.l_in2_m += trial_rng.normal(0.0, tolerances.length_sigma_m);
  d.l_out_m += trial_rng.normal(0.0, tolerances.length_sigma_m);
  d.l_out2_m += trial_rng.normal(0.0, tolerances.length_sigma_m);
  d.vgs += trial_rng.normal(0.0, tolerances.vbias_sigma);
  d.vds += trial_rng.normal(0.0, tolerances.vbias_sigma);
  out.substrate.epsilon_r =
      uniform_tol(out.substrate.epsilon_r, tolerances.er_relative);
  out.substrate.height_m =
      uniform_tol(out.substrate.height_m, tolerances.height_relative);
  clamp_design(d);
  return out;
}

TrialDraw sobol_trial_draw(const numeric::ScrambledSobol& sequence,
                           std::uint64_t trial, const DesignVector& nominal,
                           const microstrip::Substrate& substrate,
                           const ToleranceModel& tolerances) {
  double u[kYieldTrialDimensions];
  sequence.point(trial, u);
  const auto uniform_tol = [](double nominal_v, double rel, double uu) {
    return nominal_v * (1.0 + rel * (2.0 * uu - 1.0));
  };
  // Quantile transform for the Gaussians (one coordinate, one variate —
  // Box-Muller would consume two and break the net structure).  The
  // coordinate is kept away from {0, 1} so the transform stays finite;
  // 2^-33 is below the sequence's 32-bit resolution, so only the exact
  // origin point is affected (at ~6.5 sigma).
  const auto gauss = [](double sigma, double uu) {
    constexpr double eps = 0x1.0p-33;
    return sigma * numeric::normal_quantile(
                       std::min(std::max(uu, eps), 1.0 - eps));
  };
  TrialDraw out{nominal, substrate};
  DesignVector& d = out.design;
  d.l_shunt_h = uniform_tol(d.l_shunt_h, tolerances.lc_relative, u[0]);
  d.c_mid_f = uniform_tol(d.c_mid_f, tolerances.lc_relative, u[1]);
  d.c_out_sh_f = uniform_tol(d.c_out_sh_f, tolerances.lc_relative, u[2]);
  d.l_sdeg_h = uniform_tol(d.l_sdeg_h, tolerances.lc_relative, u[3]);
  d.c_in_f = uniform_tol(d.c_in_f, tolerances.lc_relative, u[4]);
  d.r_fb_ohm = uniform_tol(d.r_fb_ohm, 0.01, u[5]);
  d.l_in_m += gauss(tolerances.length_sigma_m, u[6]);
  d.l_in2_m += gauss(tolerances.length_sigma_m, u[7]);
  d.l_out_m += gauss(tolerances.length_sigma_m, u[8]);
  d.l_out2_m += gauss(tolerances.length_sigma_m, u[9]);
  d.vgs += gauss(tolerances.vbias_sigma, u[10]);
  d.vds += gauss(tolerances.vbias_sigma, u[11]);
  out.substrate.epsilon_r =
      uniform_tol(out.substrate.epsilon_r, tolerances.er_relative, u[12]);
  out.substrate.height_m =
      uniform_tol(out.substrate.height_m, tolerances.height_relative, u[13]);
  clamp_design(d);
  return out;
}

YieldTrialEvaluator::YieldTrialEvaluator(const device::Phemt& device,
                                         AmplifierConfig config,
                                         const DesignVector& nominal,
                                         std::vector<double> band_hz)
    : device_(device),
      config_(std::move(config)),
      band_hz_(band_hz.empty() ? LnaDesign::default_band()
                               : std::move(band_hz)) {
  config_.resolve();
  // Cold build from the nominal design: closures, plan layout and
  // workspace blocks allocate freely here; every trial after the first is
  // allocation-free.
  const LnaDesign lna(device_, config_, nominal);
  const circuit::Netlist nl = lna.build_netlist(&bindings_);
  std::vector<double> grid = band_hz_;
  const std::vector<double> mu_grid = LnaDesign::stability_grid();
  grid.insert(grid.end(), mu_grid.begin(), mu_grid.end());
  bplan_ = circuit::BatchedPlan(nl, std::move(grid));
  w50_prop_.resize(bplan_.grid().size());
  wbias_prop_.resize(bplan_.grid().size());
  noise_buf_.resize(band_hz_.size());
  nt_adj_ = device_.temperatures();
  if (config_.t_ambient_k != 290.0) {
    const double scale = config_.t_ambient_k / 290.0;
    nt_adj_.tg_k *= scale;
    nt_adj_.td_k *= scale;
  }
}

void YieldTrialEvaluator::retabulate(const TrialDraw& draw,
                                     const BiasNetwork& bias) {
  // Every tolerance draw moves every perturbed parameter almost surely,
  // so — unlike the optimizer-loop BandEvaluator — there is no
  // changed-field tracking: each trial rewrites all perturbed tables.
  // That full rewrite is also what makes trials history-free: the plan
  // state after retabulate() depends only on THIS draw, never on which
  // trials the worker handled before (determinism under any sharding),
  // and a mid-write exception needs no repair pass.
  bplan_.mark_values_dirty();
  const double t = config_.t_ambient_k;
  const DesignVector& d = draw.design;
  const microstrip::Substrate& sub = draw.substrate;
  const std::size_t nb = band_hz_.size();  // noise read in-band only
  const std::vector<double>& grid = bplan_.grid();

  // The trial board's dispersion tables, one per line width (length- and
  // element-independent, shared below).
  const microstrip::Line w50_probe(sub, config_.w50_m, 1e-3);
  const microstrip::Line wbias_probe(sub, config_.w_bias_m, 1e-3);
  for (std::size_t fi = 0; fi < grid.size(); ++fi) {
    w50_prop_[fi] = w50_probe.propagation(grid[fi]);
    wbias_prop_[fi] = wbias_probe.propagation(grid[fi]);
  }

  if (config_.dispersive_passives) {
    planw::write_lossy(bplan_, bindings_.cin,
                       passives::make_capacitor(d.c_in_f, config_.package), t,
                       nb);
    planw::write_lossy(bplan_, bindings_.lshunt,
                       passives::make_inductor(d.l_shunt_h, config_.package),
                       t, nb);
    planw::write_lossy(bplan_, bindings_.cmid,
                       passives::make_capacitor(d.c_mid_f, config_.package), t,
                       nb);
    planw::write_lossy(bplan_, bindings_.lsdeg,
                       passives::make_inductor(d.l_sdeg_h, config_.package), t,
                       nb);
    planw::write_lossy(bplan_, bindings_.coutsh,
                       passives::make_capacitor(d.c_out_sh_f, config_.package),
                       t, nb);
  } else {
    planw::write_capacitor(bplan_, bindings_.cin.element, d.c_in_f);
    planw::write_inductor(bplan_, bindings_.lshunt.element, d.l_shunt_h);
    planw::write_capacitor(bplan_, bindings_.cmid.element, d.c_mid_f);
    planw::write_inductor(bplan_, bindings_.lsdeg.element, d.l_sdeg_h);
    planw::write_capacitor(bplan_, bindings_.coutsh.element, d.c_out_sh_f);
  }
  planw::write_resistor(bplan_, bindings_.rfb, d.r_fb_ohm, t, nb);
  planw::write_resistor(bplan_, bindings_.rdrain, bias.r_drain, t, nb);

  // Design-vector matching lines on the trial board.
  planw::write_line(bplan_, bindings_.tlin1,
                    microstrip::Line(sub, config_.w50_m, d.l_in_m), w50_prop_,
                    t, nb);
  planw::write_line(bplan_, bindings_.tlin2,
                    microstrip::Line(sub, config_.w50_m, d.l_in2_m), w50_prop_,
                    t, nb);
  planw::write_line(bplan_, bindings_.tlout1,
                    microstrip::Line(sub, config_.w50_m, d.l_out_m), w50_prop_,
                    t, nb);
  planw::write_line(bplan_, bindings_.tlout2,
                    microstrip::Line(sub, config_.w50_m, d.l_out2_m),
                    w50_prop_, t, nb);

  // Substrate-dependent fixed elements the optimizer path never touches:
  // the bias line and the tee parasitics follow the trial's board.
  planw::write_line(bplan_, bindings_.tlbias,
                    microstrip::Line(sub, config_.w_bias_m, config_.l_bias_m),
                    wbias_prop_, t, nb);
  if (bindings_.has_tee) {
    const microstrip::TeeJunction tee(sub, config_.w50_m, config_.w_bias_m);
    planw::write_inductor(bplan_, bindings_.ltee1, tee.arm_inductance_main());
    planw::write_inductor(bplan_, bindings_.ltee2, tee.arm_inductance_main());
    planw::write_inductor(bplan_, bindings_.ltee3,
                          tee.arm_inductance_branch());
    planw::write_capacitor(bplan_, bindings_.ctee, tee.junction_capacitance());
  }

  // The FET at the trial's bias point (same hoisting as fet_closures; the
  // extraction is temperature-independent, so the unadjusted device
  // yields identical values).
  const device::IntrinsicParams ip =
      device_.small_signal(device::Bias{d.vgs, d.vds});
  planw::write_fet(bplan_, bindings_.q1, ip, device_.extrinsics(), nt_adj_,
                   nb);
}

TrialOutcome YieldTrialEvaluator::evaluate(const TrialDraw& draw,
                                           const DesignGoals& goals) {
  GNSSLNA_OBS_COUNT("yield.resyncs");
  TrialOutcome out;
  try {
    // Reject exactly what the rebuild path rejects, in the same order:
    // board first (AmplifierConfig::resolve validates the substrate),
    // then the operating point — both BEFORE any table is touched.
    draw.substrate.validate();
    const BiasNetwork bias = design_bias(device_, draw.design, config_);
    retabulate(draw, bias);

    const std::size_t lanes = bplan_.size();
    const std::size_t band_points = band_hz_.size();
    bplan_.factor(workspace_, 0, lanes);
    bplan_.solve_ports(workspace_);
    bplan_.solve_output_transfer(workspace_, 1, 0, band_points);
    bplan_.noise_sweep(workspace_, 0, 1, noise_buf_.data());
    // Serial grid-order reduction replaying BandEvaluator::batched_pass
    // (itself pinned bit-identical to LnaDesign::evaluate).
    double nf_sum = 0.0;
    double gt_min = 1e9, s11_worst = -1e9, s22_worst = -1e9;
    for (std::size_t fi = 0; fi < band_points; ++fi) {
      const rf::SParams s = bplan_.s_params_at(workspace_, fi);
      nf_sum += noise_buf_[fi].noise_figure_db;
      gt_min = std::min(gt_min, rf::db20(s.s21));
      s11_worst = std::max(s11_worst, rf::db20(s.s11));
      s22_worst = std::max(s22_worst, rf::db20(s.s22));
    }
    double mu_min = 1e9;
    for (std::size_t fi = band_points; fi < lanes; ++fi) {
      const rf::SParams s = bplan_.s_params_at(workspace_, fi);
      mu_min = std::min(mu_min, std::min(rf::mu_source(s), rf::mu_load(s)));
    }
    out.nf_avg_db = nf_sum / static_cast<double>(band_points);
    out.gt_min_db = gt_min;
    out.pass = meets_goals(out.nf_avg_db, out.gt_min_db, s11_worst, s22_worst,
                           mu_min, goals);
  } catch (const std::exception&) {
    out = TrialOutcome{};
    out.failed = true;
    return out;
  }
  if (!std::isfinite(out.nf_avg_db) || !std::isfinite(out.gt_min_db)) {
    out = TrialOutcome{};
    out.failed = true;
  }
  return out;
}

YieldReport run_yield(const device::Phemt& device,
                      const AmplifierConfig& config,
                      const DesignVector& design, const DesignGoals& goals,
                      std::size_t n, numeric::Rng& rng,
                      const YieldOptions& options) {
  if (n == 0) {
    throw std::invalid_argument("run_yield: n must be >= 1");
  }
  GNSSLNA_OBS_SPAN("amplifier.yield");
  AmplifierConfig base = config;
  base.resolve();
  const std::vector<double> band = LnaDesign::default_band();

  // One fork advances the caller's generator; every trial then derives
  // its draw as a pure function of (snapshot, trial index) — Rng::split
  // for the pseudo stream, the Gray-code formula (scramble masks split
  // from the same snapshot) for Sobol.
  const numeric::Rng root = rng.fork();
  std::optional<numeric::ScrambledSobol> sobol;
  if (options.sampler == YieldSampler::kSobol) {
    sobol.emplace(kYieldTrialDimensions, root);
  }
  const std::size_t shard = options.shard == 0 ? 256 : options.shard;
  const std::size_t bins = options.hist_bins == 0 ? 4096 : options.hist_bins;

  // Pool of per-worker states: each holds a persistent trial evaluator
  // and its private streaming accumulator.  Shards check a state out for
  // their whole range; which shard gets which state is scheduling-
  // dependent, which is harmless because trials are history-free and the
  // accumulators merge order-independently.
  struct Worker {
    std::unique_ptr<YieldTrialEvaluator> eval;
    StreamingStats stats;
  };
  std::vector<std::unique_ptr<Worker>> pool;
  std::vector<Worker*> idle;
  std::mutex pool_mutex;
  const auto acquire = [&]() -> Worker* {
    {
      const std::lock_guard<std::mutex> lock(pool_mutex);
      if (!idle.empty()) {
        Worker* w = idle.back();
        idle.pop_back();
        return w;
      }
    }
    auto fresh = std::make_unique<Worker>();
    fresh->stats.init(bins);
    if (options.reuse_plan) {
      try {
        fresh->eval =
            std::make_unique<YieldTrialEvaluator>(device, base, design, band);
        GNSSLNA_OBS_COUNT("yield.plan_builds");
      } catch (const std::exception&) {
        // Nominal design itself infeasible: fall back to the per-trial
        // rebuild path, which classifies each trial on its own draw —
        // exactly what the engine would report trial by trial.
        fresh->eval = nullptr;
      }
    }
    const std::lock_guard<std::mutex> lock(pool_mutex);
    pool.push_back(std::move(fresh));
    return pool.back().get();
  };
  const auto release = [&](Worker* w) {
    const std::lock_guard<std::mutex> lock(pool_mutex);
    idle.push_back(w);
  };

  const auto run_range = [&](std::size_t begin, std::size_t end) {
    const std::size_t nshards = (end - begin + shard - 1) / shard;
    numeric::parallel_for(options.threads, nshards, [&](std::size_t s) {
      GNSSLNA_OBS_SPAN("yield.shard");
      const std::size_t t0 = begin + s * shard;
      const std::size_t t1 = std::min(end, t0 + shard);
      Worker* w = acquire();
      const std::uint64_t failed_before = w->stats.failed;
      for (std::size_t i = t0; i < t1; ++i) {
        const TrialDraw draw =
            sobol ? sobol_trial_draw(*sobol, i, design, base.substrate,
                                     options.tolerances)
                  : pseudo_trial_draw(root, i, design, base.substrate,
                                      options.tolerances);
        const TrialOutcome o =
            w->eval ? w->eval->evaluate(draw, goals)
                    : rebuild_trial(device, base, band, draw, goals);
        w->stats.add(o, options);
      }
      GNSSLNA_OBS_COUNT_N("yield.samples", t1 - t0);
      GNSSLNA_OBS_COUNT_N("yield.failed_evals",
                          w->stats.failed - failed_before);
      release(w);
    });
  };

  const auto merged_stats = [&]() {
    StreamingStats total;
    total.init(bins);
    for (const std::unique_ptr<Worker>& w : pool) total.merge(w->stats);
    return total;
  };

  if (options.trace) {
    // Power-of-two blocks: a barrier after 1, 2, 4, ... samples lets the
    // convergence trace snapshot a deterministic prefix.  Blocks change
    // only WHEN records are cut, never what is computed, so the final
    // report is identical with tracing off.
    std::size_t done = 0, iteration = 0, next = 1;
    while (done < n) {
      const std::size_t end = std::min(n, next);
      run_range(done, end);
      done = end;
      next *= 2;
      const StreamingStats s = merged_stats();
      const numeric::WilsonInterval ci =
          numeric::wilson_interval(s.passes, done);
      obs::TraceRecord rec;
      rec.phase = sobol ? "yield_qmc" : "yield_mc";
      rec.stream = 0;
      rec.iteration = iteration++;
      rec.evaluations = done;
      rec.best_value =
          static_cast<double>(s.passes) / static_cast<double>(done);
      rec.attainment = ci.hi - ci.lo;
      rec.front_size = s.passes;
      rec.hypervolume = static_cast<double>(s.failed);
      options.trace(rec);
    }
  } else {
    run_range(0, n);
  }

  return report_from(merged_stats(), n, options);
}

YieldReport monte_carlo_yield(const device::Phemt& device,
                              const AmplifierConfig& config,
                              const DesignVector& design,
                              const DesignGoals& goals, std::size_t n,
                              numeric::Rng& rng, ToleranceModel tolerances,
                              std::size_t threads) {
  YieldOptions options;
  options.threads = threads;
  options.tolerances = tolerances;
  return run_yield(device, config, design, goals, n, rng, options);
}

}  // namespace gnsslna::amplifier
