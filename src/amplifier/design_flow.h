// The end-to-end design flow (part 4 of the paper's abstract): optimal
// selection of the operating point and essential passive elements with the
// improved goal-attainment method, followed by snapping to purchasable
// E-series values and re-verification.
#pragma once

#include <memory>

#include "amplifier/objectives.h"
#include "passives/eseries.h"

namespace gnsslna::amplifier {

/// Snaps the discrete-component entries of a design to the E-series
/// (inductors, capacitors); trims line lengths to 0.1 mm and bias voltages
/// to 10 mV — fab- and trimmer-realistic granularity.
DesignVector snap_design(const DesignVector& d,
                         passives::ESeries series = passives::ESeries::kE24);

struct DesignOutcome {
  optimize::GoalResult optimization;  ///< raw optimizer result
  DesignVector continuous;            ///< optimum before snapping
  BandReport continuous_report;
  DesignVector snapped;               ///< E-series realizable design
  BandReport snapped_report;
  BiasNetwork bias;                   ///< DC network for the snapped design
};

struct DesignFlowOptions {
  DesignGoals goals = {};
  optimize::ImprovedGoalOptions optimizer = {};
  passives::ESeries series = passives::ESeries::kE24;
  std::vector<double> band_hz = {};  ///< empty -> LnaDesign::default_band()
  /// Optional externally owned evaluation engine (see make_goal_problem):
  /// every band evaluation of the flow — the optimizer's, plus the
  /// continuous/snapped verification reports — runs through it, so
  /// concurrent flows on one topology share compiled stamps.  Must have
  /// been built for the same (device, resolved config, band); serial-only
  /// (requires optimizer.threads == 1).  Results are bit-identical with
  /// and without a shared evaluator (pinned by tests/test_service.cpp).
  std::shared_ptr<BandEvaluator> evaluator = nullptr;
};

/// Runs the full flow.  Deterministic per rng seed.
DesignOutcome run_design_flow(const device::Phemt& device,
                              AmplifierConfig config, numeric::Rng& rng,
                              DesignFlowOptions options = {});

}  // namespace gnsslna::amplifier
