// The GNSS antenna-preamplifier topology and its design vector.
//
// A single-stage pHEMT LNA in the classic app-note arrangement:
//
//   port1 --Cin--+--[TL_in1]--+--[TL_in2]--(gate) FET (drain)--[tee]--[TL_out1]--+--[TL_out2]--Cblk-- port2
//                |           |                      |            |               |
//             Lshunt       C_mid                 Ls_deg      bias branch      C_out_sh
//                |           |                      |        (hi-Z line,         |
//             (decoupled    gnd                    gnd        Cdec+Rdrain)      gnd
//              bias node)
//
// The input is a double-stub match (shunt L at the port, shunt C between
// two line sections); the output is a line - shunt C - line section.  Two
// stubs per side give the optimizer enough freedom to hold the match
// across the full 1.1-1.7 GHz multi-constellation band — a single stub
// cannot cover 43%% fractional bandwidth against the pHEMT's |Gamma|~0.8.
//
//   * Cin / Cblk: DC blocks (dispersive chip capacitors);
//   * input 50-ohm microstrip sections rotate the source reflection
//     toward Gamma_opt;
//   * Lshunt: shunt inductor at the input side (first stub) - also the
//     gate DC return through its RF-decoupled cold end;
//   * C_mid: second stub of the input match;
//   * Ls_deg: source degeneration inductance - trades gain for
//     simultaneous noise/impedance match and stability;
//   * drain bias enters through a microstrip T-splitter (the paper's "T
//     splitter"), a high-impedance quarter-wave-ish line, a decoupling
//     capacitor, and the drain resistor that sets the operating point;
//   * output microstrip sections plus shunt capacitor form the output
//     match.
//
// The design vector (Table IV of the reconstruction) is the operating
// point plus the essential passive elements:
//   [vgs, vds, l_in1, l_in2, L_shunt, C_mid, l_out1, C_out_sh, l_out2,
//    L_s_deg, C_in, R_fb]
//
// R_fb (with a fixed series DC block) is the resistive shunt feedback
// from drain to gate: it guarantees low-frequency stability, flattens the
// gain, and pulls both port impedances toward 50 ohm at a small noise
// cost — the optimizer picks how much of it to use.
#pragma once

#include <vector>

#include "device/phemt.h"
#include "microstrip/line.h"
#include "optimize/problem.h"
#include "passives/catalog.h"

namespace gnsslna::amplifier {

/// The optimizer's free variables.
struct DesignVector {
  double vgs = -0.35;        ///< gate bias [V]
  double vds = 2.5;          ///< drain bias [V]
  double l_in_m = 12e-3;     ///< first input line length [m]
  double l_in2_m = 8e-3;     ///< second input line length [m]
  double l_shunt_h = 8e-9;   ///< input shunt inductor [H]
  double c_mid_f = 0.5e-12;  ///< mid-input shunt capacitor [F]
  double l_out_m = 10e-3;    ///< first output line length [m]
  double c_out_sh_f = 1e-12; ///< output shunt capacitor [F]
  double l_out2_m = 8e-3;    ///< second output line length [m]
  double l_sdeg_h = 0.6e-9;  ///< source degeneration inductor [H]
  double c_in_f = 22e-12;    ///< input DC block [F]
  double r_fb_ohm = 3000.0;  ///< drain-gate shunt feedback resistor [ohm]

  static constexpr std::size_t kDimension = 12;

  std::vector<double> to_vector() const;
  static DesignVector from_vector(const std::vector<double>& x);

  /// Physical search box for the optimizer.
  static optimize::Bounds bounds();

  /// Human-readable element names, matching to_vector() order.
  static const std::vector<std::string>& names();
};

/// Fixed board/bias context the optimizer does not touch.
struct AmplifierConfig {
  microstrip::Substrate substrate = microstrip::Substrate::fr4();
  double vdd = 5.0;               ///< supply rail [V]
  double w50_m = 0.0;             ///< 50-ohm trace width; 0 -> synthesized
  double w_bias_m = 0.2e-3;       ///< high-impedance bias trace width [m]
  double l_bias_m = 28e-3;        ///< bias line length (~quarter wave) [m]
  double c_dec_f = 1e-9;          ///< bias decoupling capacitor [F]
  double c_gate_dec_f = 100e-12;  ///< gate-return decoupling capacitor [F]
  double r_gate_bias = 3300.0;    ///< gate divider Thevenin resistance [ohm]
  passives::Package package = passives::Package::k0402;
  bool dispersive_passives = true;  ///< false -> ideal L/C (ablation A1)
  bool model_tee = true;            ///< include T-splitter parasitics
  double t_ambient_k = 290.0;       ///< physical temperature of the board;
                                    ///< passive thermal noise and the device
                                    ///< noise temperatures scale with it
  bool use_eval_plan = true;        ///< evaluate through the compiled
                                    ///< netlist plan (bit-identical to the
                                    ///< legacy per-call path; false only
                                    ///< for equivalence tests/benches).
                                    ///< resolve() forces false when the
                                    ///< GNSSLNA_NO_EVAL_PLAN env var is set
                                    ///< (plan on/off A/B of full benches)
  bool use_batched_plan = true;     ///< with use_eval_plan, evaluate through
                                    ///< the frequency-batched allocation-free
                                    ///< core (circuit::BatchedPlan) instead
                                    ///< of the scalar compiled plan; results
                                    ///< are bit-identical either way.
                                    ///< resolve() forces false when the
                                    ///< GNSSLNA_NO_BATCHED_PLAN env var is
                                    ///< set (three-way path A/B runs)

  /// Resolves w50_m / l_bias_m if unset (synthesized at band centre).
  void resolve();
};

/// Derived DC bias network for a chosen operating point.
struct BiasNetwork {
  double r_drain = 0.0;  ///< series drain resistor from Vdd [ohm]
  double id_a = 0.0;     ///< drain current at the operating point [A]
  double vg_bias = 0.0;  ///< required gate bias voltage [V]
};

/// Sizes the drain resistor and reports the bias for (vgs, vds) at vdd.
/// Throws std::domain_error when the point is not reachable (Id too small
/// or vds > vdd).
BiasNetwork design_bias(const device::Phemt& device, const DesignVector& d,
                        const AmplifierConfig& config);

/// Cross-checks a designed bias network with the full nonlinear DC solver:
/// builds the actual (Vdd, gate bias, drain resistor, FET) circuit, solves
/// the operating point with Newton, and reports the realized
/// (vgs, vds, id).  The design flow sizes the resistor by Ohm's law at the
/// TARGET point; this verifies the network actually lands there.
struct DcVerification {
  double vgs = 0.0;
  double vds = 0.0;
  double id_a = 0.0;
  double vds_error = 0.0;  ///< realized - target [V]
  int newton_iterations = 0;
};
DcVerification verify_bias_dc(const device::Phemt& device,
                              const DesignVector& d,
                              const AmplifierConfig& config);

}  // namespace gnsslna::amplifier
