#include "amplifier/characterize.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "circuit/analysis.h"
#include "rf/units.h"

namespace gnsslna::amplifier {

rf::NoiseParams amplifier_noise_parameters(const LnaDesign& lna,
                                           double frequency_hz,
                                           std::size_t n_states,
                                           double ring_radius) {
  if (n_states < 4) {
    throw std::invalid_argument(
        "amplifier_noise_parameters: need >= 4 source states");
  }
  if (ring_radius <= 0.0 || ring_radius >= 1.0) {
    throw std::invalid_argument(
        "amplifier_noise_parameters: ring_radius must be in (0, 1)");
  }
  const circuit::Netlist nl = lna.build_netlist();
  std::vector<rf::SourcePullPoint> points;
  points.reserve(n_states);

  // Matched state first, then a ring of reflective states.
  points.push_back(
      {rf::Complex{0.0, 0.0},
       circuit::noise_analysis(nl, 0, 1, frequency_hz).noise_factor});
  for (std::size_t k = 0; k + 1 < n_states; ++k) {
    const double ang = 2.0 * std::numbers::pi * static_cast<double>(k) /
                       static_cast<double>(n_states - 1);
    const rf::Complex gamma{ring_radius * std::cos(ang),
                            ring_radius * std::sin(ang)};
    const rf::Complex zs = rf::z_from_gamma(gamma, rf::kZ0);
    points.push_back(
        {gamma, circuit::noise_analysis_source_pull(nl, 0, 1, zs,
                                                    frequency_hz)
                    .noise_factor});
  }
  return rf::fit_noise_parameters(points, frequency_hz, rf::kZ0);
}

std::vector<SensitivityRow> sensitivity_analysis(
    const device::Phemt& device, const AmplifierConfig& config,
    const DesignVector& design) {
  AmplifierConfig cfg = config;
  cfg.resolve();
  const std::vector<double> band = LnaDesign::default_band();
  const std::vector<double> x0 = design.to_vector();
  const auto& names = DesignVector::names();

  std::vector<SensitivityRow> rows;
  rows.reserve(x0.size());
  for (std::size_t j = 0; j < x0.size(); ++j) {
    // +1% relative for element values; 10 mV absolute for the bias pair.
    const double h = (j < 2) ? 0.01 : 0.01 * std::abs(x0[j]);
    std::vector<double> xp = x0, xm = x0;
    xp[j] += h;
    xm[j] -= h;

    SensitivityRow row;
    row.element = names[j];
    try {
      const BandReport rp =
          LnaDesign(device, cfg, DesignVector::from_vector(xp))
              .evaluate(band);
      const BandReport rm =
          LnaDesign(device, cfg, DesignVector::from_vector(xm))
              .evaluate(band);
      row.d_nf_db = 0.5 * (rp.nf_avg_db - rm.nf_avg_db);
      row.d_gt_db = 0.5 * (rp.gt_min_db - rm.gt_min_db);
      row.d_s11_db = 0.5 * (rp.s11_worst_db - rm.s11_worst_db);
    } catch (const std::exception&) {
      // A perturbation that breaks the bias is itself maximal sensitivity.
      row.d_nf_db = std::numeric_limits<double>::quiet_NaN();
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace gnsslna::amplifier
