#include "amplifier/topology.h"

#include <cstdlib>
#include <numbers>
#include <stdexcept>

#include "circuit/dc.h"

#include "rf/sweep.h"

namespace gnsslna::amplifier {

std::vector<double> DesignVector::to_vector() const {
  return {vgs,     vds,        l_in_m,   l_in2_m,  l_shunt_h, c_mid_f,
          l_out_m, c_out_sh_f, l_out2_m, l_sdeg_h, c_in_f,    r_fb_ohm};
}

DesignVector DesignVector::from_vector(const std::vector<double>& x) {
  if (x.size() != kDimension) {
    throw std::invalid_argument("DesignVector::from_vector: size mismatch");
  }
  DesignVector d;
  d.vgs = x[0];
  d.vds = x[1];
  d.l_in_m = x[2];
  d.l_in2_m = x[3];
  d.l_shunt_h = x[4];
  d.c_mid_f = x[5];
  d.l_out_m = x[6];
  d.c_out_sh_f = x[7];
  d.l_out2_m = x[8];
  d.l_sdeg_h = x[9];
  d.c_in_f = x[10];
  d.r_fb_ohm = x[11];
  return d;
}

optimize::Bounds DesignVector::bounds() {
  return optimize::Bounds(
      // vgs   vds  l_in1  l_in2  Lsh   Cmid     l_out1 Cout     l_out2 Lsdeg  Cin
      {-0.60, 1.0, 1e-3, 1e-3, 1e-9, 0.2e-12, 1e-3, 0.2e-12, 1e-3, 0.1e-9,
       2e-12, 150.0},
      {-0.05, 4.0, 40e-3, 40e-3, 30e-9, 5e-12, 40e-3, 5e-12, 40e-3, 3e-9,
       100e-12, 6000.0});
}

const std::vector<std::string>& DesignVector::names() {
  static const std::vector<std::string> kNames = {
      "Vgs [V]",      "Vds [V]",      "l_in1 [m]",    "l_in2 [m]",
      "L_shunt [H]",  "C_mid [F]",    "l_out1 [m]",   "C_out_sh [F]",
      "l_out2 [m]",   "L_s_deg [H]",  "C_in [F]",     "R_fb [ohm]"};
  return kNames;
}

void AmplifierConfig::resolve() {
  substrate.validate();
  // Escape hatch for plan-on/off A/B runs of the full benches: results
  // are bit-identical either way (see tests/test_compiled.cpp), only the
  // evaluation cost changes.
  if (std::getenv("GNSSLNA_NO_EVAL_PLAN") != nullptr) {
    use_eval_plan = false;
  }
  if (std::getenv("GNSSLNA_NO_BATCHED_PLAN") != nullptr) {
    use_batched_plan = false;
  }
  const double f_centre =
      0.5 * (rf::kGnssBandLowHz + rf::kGnssBandHighHz);
  if (w50_m <= 0.0) {
    w50_m = microstrip::synthesize_width(substrate, rf::kZ0, f_centre);
  }
  if (l_bias_m <= 0.0) {
    // Quarter-wave at band centre: the bias tap looks open where it
    // matters most.
    l_bias_m = microstrip::length_for_electrical(
        substrate, w_bias_m, std::numbers::pi / 2.0, f_centre);
  }
}

BiasNetwork design_bias(const device::Phemt& device, const DesignVector& d,
                        const AmplifierConfig& config) {
  if (d.vds >= config.vdd) {
    throw std::domain_error("design_bias: vds must be below vdd");
  }
  BiasNetwork b;
  b.id_a = device.drain_current({d.vgs, d.vds});
  if (b.id_a < 1e-4) {
    throw std::domain_error("design_bias: drain current below 0.1 mA");
  }
  b.r_drain = (config.vdd - d.vds) / b.id_a;
  b.vg_bias = d.vgs;  // source is at DC ground (inductive degeneration)
  return b;
}

DcVerification verify_bias_dc(const device::Phemt& device,
                              const DesignVector& d,
                              const AmplifierConfig& config) {
  const BiasNetwork nominal = design_bias(device, d, config);

  // The DC topology: Vdd -> Rdrain -> (bias line + tee, both copper:
  // negligible DC resistance) -> drain; gate at vg_bias through the shunt
  // inductor (DC short) and the gate bias resistance; source to ground
  // through the degeneration inductor (DC short).
  circuit::DcCircuit dc;
  const circuit::DcNodeId vdd = dc.add_node();
  const circuit::DcNodeId drain = dc.add_node();
  const circuit::DcNodeId gate = dc.add_node();
  dc.add_vsource(vdd, circuit::kDcGround, config.vdd);
  dc.add_vsource(gate, circuit::kDcGround, nominal.vg_bias);
  dc.add_resistor(vdd, drain, nominal.r_drain);
  dc.add_fet(gate, drain, circuit::kDcGround, device.iv_model());

  const circuit::DcSolution sol = dc.solve();
  DcVerification v;
  v.vgs = sol.voltage(gate);
  v.vds = sol.voltage(drain);
  v.id_a = dc.fet_drain_current(0, sol);
  v.vds_error = v.vds - d.vds;
  v.newton_iterations = sol.newton_iterations;
  return v;
}

}  // namespace gnsslna::amplifier
