#include "amplifier/lna.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "amplifier/plan_writers.h"
#include "circuit/noisy_twoport.h"
#include "microstrip/discontinuity.h"
#include "obs/obs.h"
#include "rf/metrics.h"
#include "rf/sweep.h"
#include "rf/units.h"

namespace gnsslna::amplifier {

namespace {

/// Fixed output DC block [F]; its L-band impedance is negligible, so it is
/// not part of the design vector.
constexpr double kOutputBlockF = 33e-12;

/// Fixed DC block in series with the feedback resistor [F].
constexpr double kFeedbackBlockF = 10e-12;

/// Adapter: a dispersive catalog part as a series impedance function.
template <typename Part>
std::function<circuit::Complex(double)> z_of(Part part) {
  return [part = std::move(part)](double f) { return part.impedance(f); };
}

/// Y-block of a microstrip line (copyable by value).
circuit::YBlockFn line_y(microstrip::Line line) {
  return [line = std::move(line)](double f) {
    return rf::y_from_abcd(line.abcd(f));
  };
}

/// The linearized-FET element and noise closures.  The bias-dependent
/// small-signal extraction (finite-difference Angelov derivatives) is
/// hoisted out of the per-frequency closures: it is a pure function of the
/// bias, so capturing the result once per design point returns exactly the
/// values Phemt::s_params / Phemt::noise would.
struct FetClosures {
  circuit::YBlockFn y;
  circuit::NoiseParamsFn np;
};

FetClosures fet_closures(const device::Phemt& dev, const device::Bias& bias) {
  const device::IntrinsicParams ip = dev.small_signal(bias);
  const device::ExtrinsicParams ex = dev.extrinsics();
  const device::NoiseTemperatures nt = dev.temperatures();
  return {[ip, ex](double f) {
            return rf::y_from_s(device::fet_s_params(ip, ex, f));
          },
          [ip, ex, nt](double f) {
            return device::pospieszalski_noise(ip, ex, nt, f);
          }};
}

}  // namespace

LnaDesign::LnaDesign(const device::Phemt& device, AmplifierConfig config,
                     DesignVector design)
    : device_(device), config_(std::move(config)), design_(design) {
  config_.resolve();
  bias_ = design_bias(device_, design_, config_);
}

circuit::Netlist LnaDesign::build_netlist() const {
  return build_netlist(nullptr);
}

circuit::Netlist LnaDesign::build_netlist(DesignBindings* bindings) const {
  using circuit::NodeId;
  DesignBindings b;
  circuit::Netlist nl;

  const NodeId n_in = nl.add_node("in");
  const NodeId n1 = nl.add_node("after_cin");
  const NodeId n_mid = nl.add_node("in_mid");
  const NodeId n2 = nl.add_node("gate");
  const NodeId n_g2 = nl.add_node("gate_bias");
  const NodeId n_s = nl.add_node("source");
  const NodeId n3 = nl.add_node("drain");
  const NodeId n5 = nl.add_node("out_match");
  const NodeId n6 = nl.add_node("out_match2");
  const NodeId n_out = nl.add_node("out");

  // --- Input DC block.
  if (config_.dispersive_passives) {
    b.cin = nl.add_lossy_impedance(
        n_in, n1, z_of(passives::make_capacitor(design_.c_in_f,
                                                config_.package)),
        config_.t_ambient_k, "Cin");
  } else {
    b.cin.element = nl.add_capacitor(n_in, n1, design_.c_in_f, "Cin");
  }

  // --- Input shunt inductor (single-stub element + gate DC return) at the
  // port side of the input line, through its RF-decoupled bias node.  The
  // stub must sit a line-length away from the gate — a shunt element AT
  // the load can never complete a single-stub match.
  if (config_.dispersive_passives) {
    b.lshunt = nl.add_lossy_impedance(
        n1, n_g2, z_of(passives::make_inductor(design_.l_shunt_h,
                                               config_.package)),
        config_.t_ambient_k, "Lshunt");
    nl.add_lossy_impedance(
        n_g2, circuit::kGround,
        z_of(passives::make_capacitor(config_.c_gate_dec_f, config_.package)),
        config_.t_ambient_k, "Cgdec");
  } else {
    b.lshunt.element = nl.add_inductor(n1, n_g2, design_.l_shunt_h, "Lshunt");
    nl.add_capacitor(n_g2, circuit::kGround, config_.c_gate_dec_f, "Cgdec");
  }
  nl.add_resistor(n_g2, circuit::kGround, config_.r_gate_bias,
                  config_.t_ambient_k, "Rgbias");

  // --- Input double-stub match: line 1, shunt C_mid, line 2 to the gate.
  b.tlin1 = circuit::add_passive_twoport(
      nl, n1, n_mid, circuit::kGround,
      line_y(microstrip::Line(config_.substrate, config_.w50_m,
                              design_.l_in_m)),
      config_.t_ambient_k, "TLin1");
  if (config_.dispersive_passives) {
    b.cmid = nl.add_lossy_impedance(
        n_mid, circuit::kGround,
        z_of(passives::make_capacitor(design_.c_mid_f, config_.package)),
        config_.t_ambient_k, "Cmid");
  } else {
    b.cmid.element =
        nl.add_capacitor(n_mid, circuit::kGround, design_.c_mid_f, "Cmid");
  }
  b.tlin2 = circuit::add_passive_twoport(
      nl, n_mid, n2, circuit::kGround,
      line_y(microstrip::Line(config_.substrate, config_.w50_m,
                              design_.l_in2_m)),
      config_.t_ambient_k, "TLin2");

  // --- The pHEMT with source degeneration.  The bias-dependent
  // small-signal extraction is hoisted into the closures (see
  // fet_closures); the Pospieszalski noise temperatures scale with the
  // ambient (first-order thermal model).
  FetClosures fet = fet_closures(adjusted_device(), device::Bias{design_.vgs,
                                                                 design_.vds});
  b.q1 = circuit::add_noisy_three_terminal(nl, n2, n3, n_s, std::move(fet.y),
                                           std::move(fet.np), "Q1");
  if (config_.dispersive_passives) {
    b.lsdeg = nl.add_lossy_impedance(
        n_s, circuit::kGround,
        z_of(passives::make_inductor(design_.l_sdeg_h, config_.package)),
        config_.t_ambient_k, "Lsdeg");
  } else {
    b.lsdeg.element =
        nl.add_inductor(n_s, circuit::kGround, design_.l_sdeg_h, "Lsdeg");
  }

  // --- Resistive shunt feedback drain -> gate (with its DC block).
  {
    const NodeId n_fb = nl.add_node("fb");
    b.rfb = nl.add_resistor(n3, n_fb, design_.r_fb_ohm, config_.t_ambient_k,
                            "Rfb");
    if (config_.dispersive_passives) {
      nl.add_lossy_impedance(
          n_fb, n2,
          z_of(passives::make_capacitor(kFeedbackBlockF, config_.package)),
          config_.t_ambient_k, "Cfb");
    } else {
      nl.add_capacitor(n_fb, n2, kFeedbackBlockF, "Cfb");
    }
  }

  // --- Drain bias tap: T-splitter, high-impedance line, decoupling, Rd.
  NodeId n4;  // drain-side node the output network continues from
  NodeId n_b; // branch node the bias line starts from
  if (config_.model_tee) {
    const microstrip::TeeJunction tee(config_.substrate, config_.w50_m,
                                      config_.w_bias_m);
    const NodeId nj = nl.add_node("tee");
    n4 = nl.add_node("after_tee");
    n_b = nl.add_node("bias_tap");
    b.ltee1 = nl.add_inductor(n3, nj, tee.arm_inductance_main(), "Ltee1");
    b.ltee2 = nl.add_inductor(nj, n4, tee.arm_inductance_main(), "Ltee2");
    b.ltee3 = nl.add_inductor(nj, n_b, tee.arm_inductance_branch(), "Ltee3");
    b.ctee = nl.add_capacitor(nj, circuit::kGround, tee.junction_capacitance(),
                              "Ctee");
    b.has_tee = true;
  } else {
    n4 = n3;
    n_b = n3;
  }
  const NodeId n_b2 = nl.add_node("bias_dec");
  b.tlbias = circuit::add_passive_twoport(
      nl, n_b, n_b2, circuit::kGround,
      line_y(microstrip::Line(config_.substrate, config_.w_bias_m,
                              config_.l_bias_m)),
      config_.t_ambient_k, "TLbias");
  if (config_.dispersive_passives) {
    nl.add_lossy_impedance(
        n_b2, circuit::kGround,
        z_of(passives::make_capacitor(config_.c_dec_f, config_.package,
                                      passives::CapDielectric::kX7R)),
        config_.t_ambient_k, "Cdec");
  } else {
    nl.add_capacitor(n_b2, circuit::kGround, config_.c_dec_f, "Cdec");
  }
  // Vdd is RF ground: the drain resistor appears from the decoupled node
  // to ground and contributes its full thermal noise.
  b.rdrain = nl.add_resistor(n_b2, circuit::kGround, bias_.r_drain,
                             config_.t_ambient_k, "Rdrain");

  // --- Output match: line 1, shunt C, line 2, DC block.
  b.tlout1 = circuit::add_passive_twoport(
      nl, n4, n5, circuit::kGround,
      line_y(microstrip::Line(config_.substrate, config_.w50_m,
                              design_.l_out_m)),
      config_.t_ambient_k, "TLout1");
  if (config_.dispersive_passives) {
    b.coutsh = nl.add_lossy_impedance(
        n5, circuit::kGround,
        z_of(passives::make_capacitor(design_.c_out_sh_f, config_.package)),
        config_.t_ambient_k, "Coutsh");
  } else {
    b.coutsh.element =
        nl.add_capacitor(n5, circuit::kGround, design_.c_out_sh_f, "Coutsh");
  }
  b.tlout2 = circuit::add_passive_twoport(
      nl, n5, n6, circuit::kGround,
      line_y(microstrip::Line(config_.substrate, config_.w50_m,
                              design_.l_out2_m)),
      config_.t_ambient_k, "TLout2");
  if (config_.dispersive_passives) {
    nl.add_lossy_impedance(
        n6, n_out, z_of(passives::make_capacitor(kOutputBlockF,
                                                 config_.package)),
        config_.t_ambient_k, "Cblk");
  } else {
    nl.add_capacitor(n6, n_out, kOutputBlockF, "Cblk");
  }

  nl.add_port(n_in, rf::kZ0, "RFin");
  nl.add_port(n_out, rf::kZ0, "RFout");
  if (bindings) *bindings = b;
  return nl;
}

device::Phemt LnaDesign::adjusted_device() const {
  device::Phemt dev = device_;
  if (config_.t_ambient_k != 290.0) {
    const double scale = config_.t_ambient_k / 290.0;
    device::NoiseTemperatures t = dev.temperatures();
    t.tg_k *= scale;
    t.td_k *= scale;
    dev = device::Phemt(dev.iv_model().clone(), dev.caps(), dev.extrinsics(),
                        t);
  }
  return dev;
}

void LnaDesign::rebind_netlist(circuit::Netlist& nl, const DesignBindings& b,
                               const DesignVector* previous) const {
  const double t = config_.t_ambient_k;
  // An element whose governing parameter did not move since `previous`
  // already holds exactly the closure this design would install (the
  // builders are pure functions of the parameter), so skipping it keeps
  // the netlist bit-identical while leaving its revision — and therefore
  // its tabulated values in any compiled plan — untouched.
  const auto changed = [&](double DesignVector::* m) {
    return previous == nullptr || previous->*m != design_.*m;
  };
  if (config_.dispersive_passives) {
    if (changed(&DesignVector::c_in_f)) {
      nl.set_lossy_impedance(
          b.cin,
          z_of(passives::make_capacitor(design_.c_in_f, config_.package)), t);
    }
    if (changed(&DesignVector::l_shunt_h)) {
      nl.set_lossy_impedance(
          b.lshunt,
          z_of(passives::make_inductor(design_.l_shunt_h, config_.package)), t);
    }
    if (changed(&DesignVector::c_mid_f)) {
      nl.set_lossy_impedance(
          b.cmid,
          z_of(passives::make_capacitor(design_.c_mid_f, config_.package)), t);
    }
    if (changed(&DesignVector::l_sdeg_h)) {
      nl.set_lossy_impedance(
          b.lsdeg,
          z_of(passives::make_inductor(design_.l_sdeg_h, config_.package)), t);
    }
    if (changed(&DesignVector::c_out_sh_f)) {
      nl.set_lossy_impedance(
          b.coutsh,
          z_of(passives::make_capacitor(design_.c_out_sh_f, config_.package)),
          t);
    }
  } else {
    if (changed(&DesignVector::c_in_f)) {
      nl.set_capacitor(b.cin.element, design_.c_in_f);
    }
    if (changed(&DesignVector::l_shunt_h)) {
      nl.set_inductor(b.lshunt.element, design_.l_shunt_h);
    }
    if (changed(&DesignVector::c_mid_f)) {
      nl.set_capacitor(b.cmid.element, design_.c_mid_f);
    }
    if (changed(&DesignVector::l_sdeg_h)) {
      nl.set_inductor(b.lsdeg.element, design_.l_sdeg_h);
    }
    if (changed(&DesignVector::c_out_sh_f)) {
      nl.set_capacitor(b.coutsh.element, design_.c_out_sh_f);
    }
  }
  if (changed(&DesignVector::r_fb_ohm)) {
    nl.set_resistor(b.rfb, design_.r_fb_ohm, t);
  }

  // The bias network (r_drain, id) and the FET small-signal/noise closures
  // are pure functions of the operating point.
  const bool bias_changed =
      changed(&DesignVector::vgs) || changed(&DesignVector::vds);
  if (bias_changed) {
    nl.set_resistor(b.rdrain, bias_.r_drain, t);
  }

  if (changed(&DesignVector::l_in_m)) {
    circuit::rebind_passive_twoport(
        nl, b.tlin1,
        line_y(microstrip::Line(config_.substrate, config_.w50_m,
                                design_.l_in_m)),
        t);
  }
  if (changed(&DesignVector::l_in2_m)) {
    circuit::rebind_passive_twoport(
        nl, b.tlin2,
        line_y(microstrip::Line(config_.substrate, config_.w50_m,
                                design_.l_in2_m)),
        t);
  }
  if (changed(&DesignVector::l_out_m)) {
    circuit::rebind_passive_twoport(
        nl, b.tlout1,
        line_y(microstrip::Line(config_.substrate, config_.w50_m,
                                design_.l_out_m)),
        t);
  }
  if (changed(&DesignVector::l_out2_m)) {
    circuit::rebind_passive_twoport(
        nl, b.tlout2,
        line_y(microstrip::Line(config_.substrate, config_.w50_m,
                                design_.l_out2_m)),
        t);
  }

  if (bias_changed) {
    FetClosures fet = fet_closures(adjusted_device(),
                                   device::Bias{design_.vgs, design_.vds});
    circuit::rebind_noisy_three_terminal(nl, b.q1, std::move(fet.y),
                                         std::move(fet.np));
  }
}

rf::SParams LnaDesign::s_params(double frequency_hz) const {
  return circuit::s_params(build_netlist(), frequency_hz);
}

rf::SweepData LnaDesign::s_sweep(const std::vector<double>& frequencies_hz,
                                 std::size_t threads) const {
  return circuit::s_sweep(build_netlist(), frequencies_hz, threads);
}

double LnaDesign::noise_figure_db(double frequency_hz) const {
  return circuit::noise_analysis(build_netlist(), 0, 1, frequency_hz)
      .noise_figure_db;
}

std::vector<double> LnaDesign::default_band() {
  return rf::linear_grid(rf::kGnssBandLowHz, rf::kGnssBandHighHz, 7);
}

std::vector<double> LnaDesign::stability_grid() {
  return rf::linear_grid(0.5e9, 3.5e9, 9);
}

namespace {

/// Per-point band figures; reduced in grid order so the report is
/// bit-identical at any thread count.
struct PointFigures {
  double nf = 0.0, gt = 0.0, s11 = 0.0, s22 = 0.0;
};

BandReport reduce_report(const std::vector<PointFigures>& points,
                         const std::vector<double>& mus, double id_a) {
  BandReport rep;
  rep.id_a = id_a;
  double nf_sum = 0.0, gt_sum = 0.0;
  rep.nf_max_db = -1e9;
  rep.gt_min_db = 1e9;
  rep.s11_worst_db = -1e9;
  rep.s22_worst_db = -1e9;
  for (const PointFigures& p : points) {
    nf_sum += p.nf;
    gt_sum += p.gt;
    rep.nf_max_db = std::max(rep.nf_max_db, p.nf);
    rep.gt_min_db = std::min(rep.gt_min_db, p.gt);
    rep.s11_worst_db = std::max(rep.s11_worst_db, p.s11);
    rep.s22_worst_db = std::max(rep.s22_worst_db, p.s22);
  }
  rep.nf_avg_db = nf_sum / static_cast<double>(points.size());
  rep.gt_avg_db = gt_sum / static_cast<double>(points.size());
  rep.mu_min = 1e9;
  for (const double mu : mus) rep.mu_min = std::min(rep.mu_min, mu);
  return rep;
}

}  // namespace

BandReport LnaDesign::evaluate(const std::vector<double>& band_hz,
                               std::size_t threads) const {
  GNSSLNA_OBS_SPAN("amplifier.lna_evaluate");
  GNSSLNA_OBS_COUNT("amplifier.band_evaluations");
  if (config_.use_eval_plan) {
    // Transient plan over (band + stability grid): one LU per frequency
    // shared by the S and noise solves, every element evaluated once per
    // frequency.  The batched core additionally factors all frequencies
    // of a chunk as one blocked LU; results are bit-identical either way.
    const circuit::Netlist nl = build_netlist();
    std::vector<double> grid = band_hz;
    const std::vector<double> mu_grid = stability_grid();
    grid.insert(grid.end(), mu_grid.begin(), mu_grid.end());
    if (config_.use_batched_plan) {
      const circuit::BatchedPlan plan(nl, std::move(grid));
      return evaluate_from_batched(plan, band_hz.size(), threads);
    }
    circuit::CompiledNetlist plan(nl, std::move(grid));
    return evaluate_from_plan(plan, band_hz.size(), threads);
  }

  // Legacy per-call path (use_eval_plan == false): assembles and factors
  // per analysis.  Kept as the equivalence reference for tests/benches.
  const circuit::Netlist nl = build_netlist();
  const std::vector<PointFigures> points = rf::sweep_map(
      band_hz,
      [&](double f) {
        const rf::SParams s = circuit::s_params(nl, f);
        PointFigures p;
        p.gt = rf::db20(s.s21);
        p.s11 = rf::db20(s.s11);
        p.s22 = rf::db20(s.s22);
        p.nf = circuit::noise_analysis(nl, 0, 1, f).noise_figure_db;
        return p;
      },
      threads);

  const std::vector<double> mus = rf::sweep_map(
      stability_grid(),
      [&](double f) {
        const rf::SParams s = circuit::s_params(nl, f);
        return std::min(rf::mu_source(s), rf::mu_load(s));
      },
      threads);
  return reduce_report(points, mus, bias_.id_a);
}

BandReport LnaDesign::evaluate_from_plan(circuit::CompiledNetlist& plan,
                                         std::size_t band_points,
                                         std::size_t threads) const {
  const std::vector<PointFigures> points = numeric::parallel_map(
      threads, band_points, [&](std::size_t i) {
        const circuit::CompiledNetlist::SAndNoise sn =
            plan.s_and_noise_at(i, 0, 1);
        PointFigures p;
        p.gt = rf::db20(sn.s.s21);
        p.s11 = rf::db20(sn.s.s11);
        p.s22 = rf::db20(sn.s.s22);
        p.nf = sn.noise.noise_figure_db;
        return p;
      });

  const std::size_t mu_points = plan.size() - band_points;
  const std::vector<double> mus = numeric::parallel_map(
      threads, mu_points, [&](std::size_t i) {
        const rf::SParams s = plan.s_params_at(band_points + i);
        return std::min(rf::mu_source(s), rf::mu_load(s));
      });
  return reduce_report(points, mus, bias_.id_a);
}

BandReport LnaDesign::evaluate_from_batched(const circuit::BatchedPlan& plan,
                                            std::size_t band_points,
                                            std::size_t threads) const {
  const std::size_t nf = plan.size();
  const std::size_t nchunks = std::min(numeric::resolve_threads(threads), nf);
  std::vector<PointFigures> points(band_points);
  std::vector<double> mus(nf - band_points);
  std::vector<circuit::EvalWorkspace> workspaces(nchunks);
  // Per-lane results never depend on which chunk a lane landed in (the
  // batched kernels are lane-independent), so any chunk count produces
  // the same index-addressed figures — reduced in grid order below.
  const auto run_chunk = [&](std::size_t c) {
    const circuit::ChunkRange r = circuit::chunk_range(c, nchunks, nf);
    circuit::EvalWorkspace& ws = workspaces[c];
    plan.factor(ws, r.begin, r.end);
    plan.solve_ports(ws);
    // Noise is only priced in-band, so the transfer solve covers just the
    // band lanes of this chunk (identical bits: lanes are independent).
    if (r.begin < band_points) {
      plan.solve_output_transfer(ws, 1, r.begin,
                                 std::min(r.end, band_points));
    }
    for (std::size_t fi = r.begin; fi < r.end; ++fi) {
      const rf::SParams s = plan.s_params_at(ws, fi);
      if (fi < band_points) {
        PointFigures p;
        p.gt = rf::db20(s.s21);
        p.s11 = rf::db20(s.s11);
        p.s22 = rf::db20(s.s22);
        p.nf = plan.noise_at(ws, fi, 0, 1).noise_figure_db;
        points[fi] = p;
      } else {
        mus[fi - band_points] = std::min(rf::mu_source(s), rf::mu_load(s));
      }
    }
  };
  if (nchunks == 1) {
    run_chunk(0);
  } else {
    numeric::parallel_for(threads, nchunks, run_chunk);
  }
  return reduce_report(points, mus, bias_.id_a);
}

BandEvaluator::BandEvaluator(const device::Phemt& device,
                             AmplifierConfig config,
                             std::vector<double> band_hz)
    : device_(device),
      config_(std::move(config)),
      band_hz_(band_hz.empty() ? LnaDesign::default_band()
                               : std::move(band_hz)) {
  config_.resolve();
}

BandReport BandEvaluator::evaluate(const DesignVector& design) {
  GNSSLNA_OBS_SPAN("amplifier.band_evaluate");
  GNSSLNA_OBS_COUNT("amplifier.band_evaluations");
  if (config_.use_batched_plan) return evaluate_batched(design);
  return evaluate_compiled(design);
}

BandReport BandEvaluator::evaluate_compiled(const DesignVector& design) {
  const LnaDesign lna(device_, config_, design);  // config already resolved
  if (!built_) {
    DesignBindings bindings;
    circuit::Netlist nl = lna.build_netlist(&bindings);
    std::vector<double> grid = band_hz_;
    const std::vector<double> mu_grid = LnaDesign::stability_grid();
    grid.insert(grid.end(), mu_grid.begin(), mu_grid.end());
    circuit::CompiledNetlist plan(nl, std::move(grid));
    // Commit to the members only once everything built, so a throwing
    // design leaves the evaluator reusable.
    netlist_ = std::move(nl);
    bindings_ = bindings;
    plan_ = std::move(plan);
    last_ = design;
    built_ = true;
  } else {
    lna.rebind_netlist(netlist_, bindings_, &last_);
    plan_.sync(netlist_);
    last_ = design;
  }
  last_retabulated_ = plan_.last_sync_retabulated();
  return lna.evaluate_from_plan(plan_, band_hz_.size(), /*threads=*/1);
}

// The direct-retabulation writers used below live in
// amplifier/plan_writers.h (namespace planw), shared with the yield
// engine's per-trial evaluator.

BandReport BandEvaluator::evaluate_batched(const DesignVector& design) {
  if (!built_) {
    // Cold build: closures, tabulation, and workspace blocks allocate
    // freely here; every subsequent call is allocation-free.
    const LnaDesign lna(device_, config_, design);
    DesignBindings bindings;
    const circuit::Netlist nl = lna.build_netlist(&bindings);
    std::vector<double> grid = band_hz_;
    const std::vector<double> mu_grid = LnaDesign::stability_grid();
    grid.insert(grid.end(), mu_grid.begin(), mu_grid.end());
    circuit::BatchedPlan plan(nl, std::move(grid));
    // Length-independent w50 dispersion table shared by all four matching
    // lines (the length is applied per element in write_line).
    const microstrip::Line w50_probe(config_.substrate, config_.w50_m, 1e-3);
    std::vector<microstrip::Line::Propagation> prop(plan.grid().size());
    for (std::size_t fi = 0; fi < prop.size(); ++fi) {
      prop[fi] = w50_probe.propagation(plan.grid()[fi]);
    }
    // Commit to the members only once everything built, so a throwing
    // design leaves the evaluator reusable.
    bplan_ = std::move(plan);
    w50_prop_ = std::move(prop);
    bindings_ = bindings;
    bias_ = lna.bias();
    nt_adj_ = device_.temperatures();
    if (config_.t_ambient_k != 290.0) {
      const double scale = config_.t_ambient_k / 290.0;
      nt_adj_.tg_k *= scale;
      nt_adj_.td_k *= scale;
    }
    last_ = design;
    built_ = true;
    last_retabulated_ = 0;
  } else {
    retabulate_batched(design);
  }
  return batched_pass();
}

void BandEvaluator::retabulate_batched(const DesignVector& design) {
  const bool all = force_full_retab_;
  // Same skip rule as LnaDesign::rebind_netlist: an element whose
  // governing parameter did not move already holds exactly the values
  // this design would tabulate (the writers are pure functions of the
  // parameter), so its tables are left untouched.
  const auto changed = [&](double DesignVector::* m) {
    return all || last_.*m != design.*m;
  };
  const bool bias_changed =
      changed(&DesignVector::vgs) || changed(&DesignVector::vds);
  // Bias first: design_bias rejects infeasible operating points BEFORE
  // any table is touched, leaving the evaluator reusable exactly like the
  // scalar path (whose LnaDesign constructor throws before rebinding).
  BiasNetwork bias = bias_;
  if (bias_changed) bias = design_bias(device_, design, config_);

  const bool any =
      all || bias_changed || changed(&DesignVector::c_in_f) ||
      changed(&DesignVector::l_shunt_h) || changed(&DesignVector::c_mid_f) ||
      changed(&DesignVector::l_sdeg_h) || changed(&DesignVector::c_out_sh_f) ||
      changed(&DesignVector::r_fb_ohm) || changed(&DesignVector::l_in_m) ||
      changed(&DesignVector::l_in2_m) || changed(&DesignVector::l_out_m) ||
      changed(&DesignVector::l_out2_m);
  if (!any) {
    last_retabulated_ = 0;
    return;  // tables and cached factorization both still valid
  }

  // Every design-bound element contributes to the admittance matrix, so
  // any rewrite below invalidates cached factorizations.  Dirty first —
  // and force a full rewrite on the next call if a writer throws halfway,
  // since the tables may then mix two designs.
  bplan_.mark_values_dirty();
  force_full_retab_ = true;
  std::size_t retabulated = 0;
  const double t = config_.t_ambient_k;
  if (config_.dispersive_passives) {
    if (changed(&DesignVector::c_in_f)) {
      retabulated += planw::write_lossy(
          bplan_, bindings_.cin,
          passives::make_capacitor(design.c_in_f, config_.package), t);
    }
    if (changed(&DesignVector::l_shunt_h)) {
      retabulated += planw::write_lossy(
          bplan_, bindings_.lshunt,
          passives::make_inductor(design.l_shunt_h, config_.package), t);
    }
    if (changed(&DesignVector::c_mid_f)) {
      retabulated += planw::write_lossy(
          bplan_, bindings_.cmid,
          passives::make_capacitor(design.c_mid_f, config_.package), t);
    }
    if (changed(&DesignVector::l_sdeg_h)) {
      retabulated += planw::write_lossy(
          bplan_, bindings_.lsdeg,
          passives::make_inductor(design.l_sdeg_h, config_.package), t);
    }
    if (changed(&DesignVector::c_out_sh_f)) {
      retabulated += planw::write_lossy(
          bplan_, bindings_.coutsh,
          passives::make_capacitor(design.c_out_sh_f, config_.package), t);
    }
  } else {
    if (changed(&DesignVector::c_in_f)) {
      retabulated += planw::write_capacitor(bplan_, bindings_.cin.element,
                                     design.c_in_f);
    }
    if (changed(&DesignVector::l_shunt_h)) {
      retabulated += planw::write_inductor(bplan_, bindings_.lshunt.element,
                                    design.l_shunt_h);
    }
    if (changed(&DesignVector::c_mid_f)) {
      retabulated += planw::write_capacitor(bplan_, bindings_.cmid.element,
                                     design.c_mid_f);
    }
    if (changed(&DesignVector::l_sdeg_h)) {
      retabulated += planw::write_inductor(bplan_, bindings_.lsdeg.element,
                                    design.l_sdeg_h);
    }
    if (changed(&DesignVector::c_out_sh_f)) {
      retabulated += planw::write_capacitor(bplan_, bindings_.coutsh.element,
                                     design.c_out_sh_f);
    }
  }
  if (changed(&DesignVector::r_fb_ohm)) {
    retabulated += planw::write_resistor(bplan_, bindings_.rfb, design.r_fb_ohm, t);
  }
  if (bias_changed) {
    retabulated += planw::write_resistor(bplan_, bindings_.rdrain, bias.r_drain, t);
  }
  if (changed(&DesignVector::l_in_m)) {
    retabulated += planw::write_line(
        bplan_, bindings_.tlin1,
        microstrip::Line(config_.substrate, config_.w50_m, design.l_in_m),
        w50_prop_, t);
  }
  if (changed(&DesignVector::l_in2_m)) {
    retabulated += planw::write_line(
        bplan_, bindings_.tlin2,
        microstrip::Line(config_.substrate, config_.w50_m, design.l_in2_m),
        w50_prop_, t);
  }
  if (changed(&DesignVector::l_out_m)) {
    retabulated += planw::write_line(
        bplan_, bindings_.tlout1,
        microstrip::Line(config_.substrate, config_.w50_m, design.l_out_m),
        w50_prop_, t);
  }
  if (changed(&DesignVector::l_out2_m)) {
    retabulated += planw::write_line(
        bplan_, bindings_.tlout2,
        microstrip::Line(config_.substrate, config_.w50_m, design.l_out2_m),
        w50_prop_, t);
  }
  if (bias_changed) {
    // Same hoisting as fet_closures: the small-signal extraction is a
    // pure function of the bias (and temperature-independent, so the
    // ambient-adjusted device of build_netlist yields identical values).
    const device::IntrinsicParams ip =
        device_.small_signal(device::Bias{design.vgs, design.vds});
    retabulated += planw::write_fet(bplan_, bindings_.q1, ip, device_.extrinsics(),
                             nt_adj_);
  }
  force_full_retab_ = false;
  bias_ = bias;
  last_ = design;
  last_retabulated_ = retabulated;
}

BandReport BandEvaluator::batched_pass() {
  const std::size_t nf = bplan_.size();
  const std::size_t band_points = band_hz_.size();
  bplan_.factor(workspace_, 0, nf);
  bplan_.solve_ports(workspace_);
  bplan_.solve_output_transfer(workspace_, 1, 0, band_points);
  noise_buf_.resize(band_points);
  bplan_.noise_sweep(workspace_, 0, 1, noise_buf_.data());
  // Serial grid-order walk with the reduction inlined; the accumulation
  // sequence replays reduce_report exactly.
  BandReport rep;
  rep.id_a = bias_.id_a;
  double nf_sum = 0.0, gt_sum = 0.0;
  rep.nf_max_db = -1e9;
  rep.gt_min_db = 1e9;
  rep.s11_worst_db = -1e9;
  rep.s22_worst_db = -1e9;
  for (std::size_t fi = 0; fi < band_points; ++fi) {
    const rf::SParams s = bplan_.s_params_at(workspace_, fi);
    const double nf_db = noise_buf_[fi].noise_figure_db;
    const double gt = rf::db20(s.s21);
    nf_sum += nf_db;
    gt_sum += gt;
    rep.nf_max_db = std::max(rep.nf_max_db, nf_db);
    rep.gt_min_db = std::min(rep.gt_min_db, gt);
    rep.s11_worst_db = std::max(rep.s11_worst_db, rf::db20(s.s11));
    rep.s22_worst_db = std::max(rep.s22_worst_db, rf::db20(s.s22));
  }
  rep.nf_avg_db = nf_sum / static_cast<double>(band_points);
  rep.gt_avg_db = gt_sum / static_cast<double>(band_points);
  rep.mu_min = 1e9;
  for (std::size_t fi = band_points; fi < nf; ++fi) {
    const rf::SParams s = bplan_.s_params_at(workspace_, fi);
    rep.mu_min =
        std::min(rep.mu_min, std::min(rf::mu_source(s), rf::mu_load(s)));
  }
  return rep;
}

}  // namespace gnsslna::amplifier
