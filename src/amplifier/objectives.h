// The LNA design problem as a goal-attainment problem.
//
// Objectives (all minimized, all in dB):
//   f1 = band-average noise figure
//   f2 = -min transducer gain      (so "gain >= G" becomes f2 <= -G)
//   f3 = worst in-band |S11|
//   f4 = worst in-band |S22|
// Hard constraints:
//   mu_min >= mu_margin  (unconditional stability, extended grid)
//   Id <= id_max         (supply budget of an antenna-mounted preamp)
//
// Objective and constraint closures share one memoized BandReport per
// design point, so the expensive netlist analyses run once per point.
#pragma once

#include <memory>

#include "amplifier/lna.h"
#include "optimize/goal_attainment.h"

namespace gnsslna::amplifier {

struct DesignGoals {
  double nf_goal_db = 0.8;
  double gain_goal_db = 14.0;   ///< minimum in-band GT
  double s11_goal_db = -10.0;
  double s22_goal_db = -10.0;
  // Relative over-attainment weights (bigger = softer goal).
  double nf_weight = 1.0;
  double gain_weight = 1.0;
  double s11_weight = 2.0;
  double s22_weight = 2.0;

  double mu_margin = 1.02;      ///< required stability margin
  double id_max_a = 0.040;      ///< current budget [A]
};

/// Objective-vector sizes and order for reports.
inline constexpr std::size_t kObjectiveCount = 4;
const std::vector<std::string>& objective_names();

/// Evaluates the four objectives of a design point (throws nothing; an
/// unbuildable point returns large sentinel values).
std::vector<double> evaluate_objectives(const device::Phemt& device,
                                        const AmplifierConfig& config,
                                        const DesignVector& d,
                                        const std::vector<double>& band_hz);

/// Builds the full goal-attainment problem over DesignVector::bounds().
///
/// `shared_evaluator` is an optional externally owned evaluation engine
/// (e.g. a service::PlanCache lease): when non-null the problem's closures
/// evaluate through IT instead of building per-thread evaluators, so
/// concurrent jobs on the same topology reuse one set of compiled stamps.
/// The lease must have been built for the SAME (device, resolved config,
/// band) — reports are then bit-identical to the per-thread path — and,
/// because BandEvaluator is not thread-safe, the caller must evaluate the
/// problem serially (optimizer threads == 1).
optimize::GoalProblem make_goal_problem(
    const device::Phemt& device, AmplifierConfig config, DesignGoals goals,
    std::vector<double> band_hz = {},
    std::shared_ptr<BandEvaluator> shared_evaluator = nullptr);

/// Reduced bi-objective (NF, -GT) problem for the Pareto sweep (Fig. 2);
/// match goals become hard constraints.  `shared_evaluator` as above.
optimize::GoalProblem make_nf_gain_problem(
    const device::Phemt& device, AmplifierConfig config, DesignGoals goals,
    std::vector<double> band_hz = {},
    std::shared_ptr<BandEvaluator> shared_evaluator = nullptr);

}  // namespace gnsslna::amplifier
