#include "amplifier/objectives.h"

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "obs/obs.h"

namespace gnsslna::amplifier {

namespace {

/// Sentinel report for design points that cannot be built (bias
/// unreachable etc.): terrible but finite, so optimizers move away
/// smoothly instead of crashing.
BandReport infeasible_report() {
  BandReport r;
  r.nf_avg_db = 50.0;
  r.nf_max_db = 50.0;
  r.gt_min_db = -50.0;
  r.gt_avg_db = -50.0;
  r.s11_worst_db = 0.0;
  r.s22_worst_db = 0.0;
  r.mu_min = 0.0;
  r.id_a = 1.0;
  return r;
}

/// Memoizes the BandReport of the most recent design point so the
/// objective and every constraint share one evaluation.
///
/// The memo slot is per thread (keyed by a per-instance id): the closures
/// holding one cache may be evaluated concurrently by parallel_map, and a
/// slot shared across threads would race — one thread could read the
/// report computed for another thread's design point.  Recomputation is
/// pure, so per-thread slots keep results bit-identical for any thread
/// count while preserving the objective-then-constraints memo hit.
class ReportCache {
 public:
  /// `borrowed` (optional) is an externally owned evaluator built for the
  /// same (device, resolved config, band): when set, at() evaluates
  /// through it from a single dedicated slot instead of the per-thread
  /// ones — the hook behind the service layer's process-wide plan-cache
  /// tier.  Borrowed mode is serial-only: the caller must not evaluate
  /// the closures concurrently (BandEvaluator is not thread-safe).
  ReportCache(device::Phemt device, AmplifierConfig config,
              std::vector<double> band,
              std::shared_ptr<BandEvaluator> borrowed = nullptr)
      : device_(std::move(device)),
        config_(std::move(config)),
        band_(std::move(band)),
        borrowed_(std::move(borrowed)),
        id_(next_id()) {
    config_.resolve();
  }

  const BandReport& at(const std::vector<double>& x) const {
    Slot& slot = borrowed_ ? borrowed_slot_ : local_slot();
    if (!slot.valid || x != slot.x) {
      GNSSLNA_OBS_COUNT("amplifier.report_cache.misses");
      slot.valid = true;
      slot.x = x;
      try {
        if (borrowed_) {
          // Borrowed-evaluator path: same values as below (the rebind
          // machinery only decides WHICH elements re-stamp, never what
          // they evaluate to), so reports are bit-identical whatever
          // design the lease last touched.
          slot.report = borrowed_->evaluate(DesignVector::from_vector(x));
        } else if (config_.use_eval_plan) {
          // Persistent per-thread evaluator: the netlist skeleton, the
          // fixed-element tables, and all solver workspaces live across
          // design points; only the design-dependent elements re-stamp.
          if (!slot.evaluator) {
            slot.evaluator =
                std::make_unique<BandEvaluator>(device_, config_, band_);
          }
          slot.report = slot.evaluator->evaluate(DesignVector::from_vector(x));
        } else {
          const LnaDesign lna(device_, config_,
                              DesignVector::from_vector(x));
          slot.report = lna.evaluate(band_);
        }
      } catch (const std::exception&) {
        GNSSLNA_OBS_COUNT("amplifier.report_cache.infeasible");
        slot.report = infeasible_report();
      }
    } else {
      GNSSLNA_OBS_COUNT("amplifier.report_cache.hits");
    }
    return slot.report;
  }

 private:
  struct Slot {
    bool valid = false;
    std::vector<double> x;
    BandReport report;
    std::unique_ptr<BandEvaluator> evaluator;
  };

  static std::uint64_t next_id() {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed);
  }

  Slot& local_slot() const {
    // Keyed by the monotonically unique id (not `this`): an address can be
    // reused by a later cache, which would alias a stale slot.
    thread_local std::unordered_map<std::uint64_t, Slot> slots;
    return slots[id_];
  }

  device::Phemt device_;
  AmplifierConfig config_;
  std::vector<double> band_;
  std::shared_ptr<BandEvaluator> borrowed_;
  mutable Slot borrowed_slot_;  ///< single slot of the serial borrowed mode
  std::uint64_t id_;
};

std::vector<double> band_or_default(std::vector<double> band_hz) {
  return band_hz.empty() ? LnaDesign::default_band() : std::move(band_hz);
}

}  // namespace

const std::vector<std::string>& objective_names() {
  static const std::vector<std::string> kNames = {
      "NF_avg [dB]", "-GT_min [dB]", "S11_worst [dB]", "S22_worst [dB]"};
  return kNames;
}

std::vector<double> evaluate_objectives(const device::Phemt& device,
                                        const AmplifierConfig& config,
                                        const DesignVector& d,
                                        const std::vector<double>& band_hz) {
  AmplifierConfig cfg = config;
  cfg.resolve();
  BandReport rep;
  try {
    rep = LnaDesign(device, cfg, d).evaluate(band_or_default(band_hz));
  } catch (const std::exception&) {
    rep = infeasible_report();
  }
  return {rep.nf_avg_db, -rep.gt_min_db, rep.s11_worst_db, rep.s22_worst_db};
}

optimize::GoalProblem make_goal_problem(
    const device::Phemt& device, AmplifierConfig config, DesignGoals goals,
    std::vector<double> band_hz,
    std::shared_ptr<BandEvaluator> shared_evaluator) {
  auto cache = std::make_shared<ReportCache>(
      device, std::move(config), band_or_default(std::move(band_hz)),
      std::move(shared_evaluator));

  optimize::GoalProblem problem;
  problem.objectives = [cache](const std::vector<double>& x) {
    const BandReport& r = cache->at(x);
    return std::vector<double>{r.nf_avg_db, -r.gt_min_db, r.s11_worst_db,
                               r.s22_worst_db};
  };
  problem.goals = {goals.nf_goal_db, -goals.gain_goal_db, goals.s11_goal_db,
                   goals.s22_goal_db};
  problem.weights = {goals.nf_weight, goals.gain_weight, goals.s11_weight,
                     goals.s22_weight};
  problem.bounds = DesignVector::bounds();
  problem.constraints = {
      [cache, goals](const std::vector<double>& x) {
        return goals.mu_margin - cache->at(x).mu_min;
      },
      [cache, goals](const std::vector<double>& x) {
        // Scaled to O(1) per 10 mA of overrun.
        return (cache->at(x).id_a - goals.id_max_a) * 100.0;
      },
  };
  return problem;
}

optimize::GoalProblem make_nf_gain_problem(
    const device::Phemt& device, AmplifierConfig config, DesignGoals goals,
    std::vector<double> band_hz,
    std::shared_ptr<BandEvaluator> shared_evaluator) {
  auto cache = std::make_shared<ReportCache>(
      device, std::move(config), band_or_default(std::move(band_hz)),
      std::move(shared_evaluator));

  optimize::GoalProblem problem;
  problem.objectives = [cache](const std::vector<double>& x) {
    const BandReport& r = cache->at(x);
    return std::vector<double>{r.nf_avg_db, -r.gt_min_db};
  };
  problem.goals = {goals.nf_goal_db, -goals.gain_goal_db};
  problem.weights = {goals.nf_weight, goals.gain_weight};
  problem.bounds = DesignVector::bounds();
  problem.constraints = {
      [cache, goals](const std::vector<double>& x) {
        return goals.mu_margin - cache->at(x).mu_min;
      },
      [cache, goals](const std::vector<double>& x) {
        return cache->at(x).s11_worst_db - goals.s11_goal_db;
      },
      [cache, goals](const std::vector<double>& x) {
        return cache->at(x).s22_worst_db - goals.s22_goal_db;
      },
      [cache, goals](const std::vector<double>& x) {
        return (cache->at(x).id_a - goals.id_max_a) * 100.0;
      },
  };
  return problem;
}

}  // namespace gnsslna::amplifier
