#include "amplifier/corners.h"

#include "numeric/parallel.h"

namespace gnsslna::amplifier {

std::vector<Corner> standard_corners(double vdd_nominal) {
  return {
      {"nominal (17C)", 290.0, vdd_nominal},
      {"cold (-40C)", 233.15, vdd_nominal * 1.05},
      {"cold, low rail", 233.15, vdd_nominal * 0.95},
      {"hot (+85C)", 358.15, vdd_nominal * 1.05},
      {"hot, low rail", 358.15, vdd_nominal * 0.95},
  };
}

std::vector<CornerRow> corner_analysis(const device::Phemt& device,
                                       const AmplifierConfig& config,
                                       const DesignVector& design,
                                       const DesignGoals& goals,
                                       const std::vector<Corner>& corners,
                                       std::size_t threads) {
  const std::vector<double> band = LnaDesign::default_band();

  return numeric::parallel_map(
      threads, corners.size(), [&](std::size_t i) {
        const Corner& corner = corners[i];
        AmplifierConfig cfg = config;
        cfg.resolve();
        cfg.t_ambient_k = corner.t_ambient_k;
        cfg.vdd = corner.vdd;

        CornerRow row;
        row.corner = corner;
        try {
          row.report = LnaDesign(device, cfg, design).evaluate(band);
          row.meets_goals = row.report.nf_avg_db <= goals.nf_goal_db &&
                            row.report.gt_min_db >= goals.gain_goal_db &&
                            row.report.s11_worst_db <= goals.s11_goal_db &&
                            row.report.s22_worst_db <= goals.s22_goal_db &&
                            row.report.mu_min >= goals.mu_margin &&
                            row.report.id_a <= goals.id_max_a;
        } catch (const std::exception&) {
          row.meets_goals = false;
          row.report = BandReport{};
        }
        return row;
      });
}

}  // namespace gnsslna::amplifier
