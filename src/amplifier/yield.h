// Monte-Carlo tolerance (yield) analysis of a finished design.
//
// Components drawn from their tolerance distributions (E24 parts: +-5%
// L/C; board: +-2% eps_r, +-5% height), the design re-evaluated per
// sample, and the pass rate against the design goals reported — the
// "will it survive production" question a paper prototype never answers.
#pragma once

#include "amplifier/design_flow.h"

namespace gnsslna::amplifier {

struct ToleranceModel {
  double lc_relative = 0.05;        ///< chip L/C value tolerance
  double er_relative = 0.02;        ///< substrate permittivity tolerance
  double height_relative = 0.05;    ///< substrate thickness tolerance
  double length_sigma_m = 0.05e-3;  ///< etch length error (1 sigma)
  double vbias_sigma = 0.02;        ///< bias voltage error (1 sigma) [V]
};

struct YieldReport {
  std::size_t samples = 0;
  std::size_t passes = 0;
  double pass_rate = 0.0;
  double nf_avg_p95_db = 0.0;   ///< 95th percentile of band-average NF
  double gt_min_p5_db = 0.0;    ///< 5th percentile of min gain
  double nf_avg_mean_db = 0.0;
  double gt_min_mean_db = 0.0;
};

/// Runs n Monte-Carlo samples; "pass" means all four goals and the
/// stability margin hold.  Trial i draws its perturbations from the
/// counter-based stream Rng::split(i) of a generator forked once from rng,
/// so the estimate is reproducible per seed and bit-identical for any
/// thread count (0 = hardware_concurrency(), 1 = serial).
YieldReport monte_carlo_yield(const device::Phemt& device,
                              const AmplifierConfig& config,
                              const DesignVector& design,
                              const DesignGoals& goals, std::size_t n,
                              numeric::Rng& rng,
                              ToleranceModel tolerances = {},
                              std::size_t threads = 1);

}  // namespace gnsslna::amplifier
