// Monte-Carlo / quasi-Monte-Carlo tolerance (yield) analysis of a
// finished design, at production scale.
//
// Components drawn from their tolerance distributions (E24 parts: +-5%
// L/C; board: +-2% eps_r, +-5% height), the design re-evaluated per
// sample, and the pass rate against the design goals reported — the
// "will it survive production" question a paper prototype never answers.
//
// The engine is built to survive 10^6+ samples:
//
//  * Plan reuse.  Each worker thread keeps ONE batched evaluation plan
//    (circuit::BatchedPlan) alive across its shards and applies every
//    trial's perturbations by re-tabulating the perturbed element tables
//    in place (amplifier/plan_writers.h) — a sample costs one re-stamp
//    plus one allocation-free batched evaluate instead of a full
//    netlist + plan rebuild.  Because a tolerance draw also perturbs the
//    SUBSTRATE, the re-stamp covers the bias line and tee parasitics the
//    optimizer path treats as fixed (DesignBindings carries their
//    handles).
//  * Counter-indexed sampling.  Trial i's draw is a pure function of
//    (rng snapshot, i) for both samplers — Rng::split(i) for the
//    pseudo-random stream, the direct Gray-code formula for scrambled
//    Sobol — so any thread can produce any trial and the estimate is
//    bit-identical under every thread count and shard size.
//  * Streaming reductions.  Pass counts, fixed-point sums, exact
//    min/max and fixed-grid histograms (for the p5/p95 estimates) are
//    merged with order-independent integer arithmetic; 10^6 samples
//    never materialize an O(n) vector.
//
// A convergence trace (pass rate +- Wilson CI every 2^k samples) can be
// streamed through the obs trace sinks; obs counters yield.samples /
// yield.resyncs / yield.failed_evals / yield.plan_builds and span timers
// amplifier.yield / yield.shard instrument the run.
#pragma once

#include <cstdint>

#include "amplifier/design_flow.h"
#include "amplifier/lna.h"
#include "numeric/sobol.h"
#include "obs/trace.h"

namespace gnsslna::amplifier {

struct ToleranceModel {
  double lc_relative = 0.05;        ///< chip L/C value tolerance
  double er_relative = 0.02;        ///< substrate permittivity tolerance
  double height_relative = 0.05;    ///< substrate thickness tolerance
  double length_sigma_m = 0.05e-3;  ///< etch length error (1 sigma)
  double vbias_sigma = 0.02;        ///< bias voltage error (1 sigma) [V]
};

enum class YieldSampler {
  kPseudoRandom,  ///< xoshiro256** via Rng::split(trial)
  kSobol,         ///< scrambled Sobol, quantile-transformed Gaussians
};

struct YieldOptions {
  std::size_t threads = 1;  ///< 0 = hardware_concurrency(), 1 = serial
  /// Trials per scheduled shard.  Shard size trades scheduling overhead
  /// against load balance; it NEVER affects the report (the reductions
  /// are order-independent).  0 falls back to the default.
  std::size_t shard = 256;
  YieldSampler sampler = YieldSampler::kPseudoRandom;
  ToleranceModel tolerances = {};
  /// false = per-trial LnaDesign rebuild (the pre-engine path, kept as
  /// the bit-identical equivalence reference for tests and benches).
  bool reuse_plan = true;
  /// When set, receives one record per power-of-two sample count:
  /// phase "yield_mc"/"yield_qmc", evaluations = samples so far,
  /// best_value = running pass rate, attainment = Wilson-CI width,
  /// front_size = passes, hypervolume = failed evaluations.
  obs::TraceSink trace = {};
  /// Fixed histogram windows for the streaming percentile estimates;
  /// values outside land in under/overflow bins and the estimates are
  /// clamped to the exact observed min/max.
  double nf_hist_lo_db = 0.0;
  double nf_hist_hi_db = 10.0;
  double gt_hist_lo_db = -60.0;
  double gt_hist_hi_db = 40.0;
  std::size_t hist_bins = 4096;
};

struct YieldReport {
  std::size_t samples = 0;
  std::size_t passes = 0;
  /// Trials whose evaluation failed outright (infeasible bias, solver
  /// failure, non-finite figures).  Counted as NOT passing, but excluded
  /// from the distribution statistics below — a failed evaluation has no
  /// NF/gain to contribute (previously sentinel values of 50 / -50 dB
  /// were mixed into the percentiles).
  std::size_t failed_evals = 0;
  double pass_rate = 0.0;  ///< passes / samples
  /// 95% Wilson score interval on the pass rate: honest uncertainty for
  /// small-n runs, never outside [0, 1].
  double pass_rate_ci95_lo = 0.0;
  double pass_rate_ci95_hi = 1.0;
  /// Distribution statistics over the successfully evaluated trials
  /// (histogram-interpolated percentiles, fixed-point means, exact
  /// min/max); all 0 when every evaluation failed.
  double nf_avg_p95_db = 0.0;  ///< 95th percentile of band-average NF
  double gt_min_p5_db = 0.0;   ///< 5th percentile of min gain
  double nf_avg_mean_db = 0.0;
  double gt_min_mean_db = 0.0;
  double nf_avg_min_db = 0.0;
  double nf_avg_max_db = 0.0;
  double gt_min_min_db = 0.0;
  double gt_min_max_db = 0.0;
};

/// One trial's perturbed design and board.
struct TrialDraw {
  DesignVector design;
  microstrip::Substrate substrate;
};

/// Coordinates one trial consumes from the Sobol sequence: 6 uniform
/// component draws, 6 Gaussian etch/bias draws, 2 uniform board draws —
/// the same variates, in the same order, as the pseudo-random stream.
inline constexpr std::size_t kYieldTrialDimensions = 14;

/// Trial `trial`'s draw from the pseudo-random stream: a pure function of
/// (root snapshot, trial) via Rng::split, with the exact distributions
/// and draw order the yield analysis has always used (lab::fabricate
/// replicates it).  The design is clamped to DesignVector::bounds().
TrialDraw pseudo_trial_draw(const numeric::Rng& root, std::uint64_t trial,
                            const DesignVector& nominal,
                            const microstrip::Substrate& substrate,
                            const ToleranceModel& tolerances);

/// Trial `trial`'s draw from a scrambled-Sobol point: coordinate k maps
/// to the k-th variate of the pseudo stream's draw order (uniforms by
/// affine map, Gaussians by the normal-quantile transform).
TrialDraw sobol_trial_draw(const numeric::ScrambledSobol& sequence,
                           std::uint64_t trial, const DesignVector& nominal,
                           const microstrip::Substrate& substrate,
                           const ToleranceModel& tolerances);

struct TrialOutcome {
  double nf_avg_db = 0.0;
  double gt_min_db = 0.0;
  bool pass = false;
  bool failed = false;  ///< evaluation failed; nf/gt are meaningless
};

/// Per-worker persistent trial evaluator: one netlist compile + batched
/// plan at construction, then every trial is one in-place re-stamp of the
/// perturbed tables plus one allocation-free batched evaluate.  The
/// steady state performs ZERO heap allocations per trial (pinned by
/// tests/test_alloc_free.cpp).  Results are bit-identical to rebuilding
/// an LnaDesign per trial (pinned by tests/test_yield.cpp).
///
/// NOT thread-safe: hold one instance per thread (run_yield keeps a pool).
class YieldTrialEvaluator {
 public:
  /// Builds the plan for the nominal design's topology.  Throws like
  /// LnaDesign if the nominal design itself is infeasible.
  YieldTrialEvaluator(const device::Phemt& device, AmplifierConfig config,
                      const DesignVector& nominal,
                      std::vector<double> band_hz = {});

  /// Evaluates one trial.  Evaluation failures are caught and reported
  /// through TrialOutcome::failed; the evaluator stays usable.
  TrialOutcome evaluate(const TrialDraw& draw, const DesignGoals& goals);

  /// Arena high-water mark of the persistent workspace [bytes]; pinned by
  /// the zero-allocation test so silent workspace growth fails CI.
  std::size_t workspace_high_water() const {
    return workspace_.arena_high_water();
  }

 private:
  void retabulate(const TrialDraw& draw, const BiasNetwork& bias);

  device::Phemt device_;
  AmplifierConfig config_;
  std::vector<double> band_hz_;
  DesignBindings bindings_;
  circuit::BatchedPlan bplan_;
  circuit::EvalWorkspace workspace_;
  /// Per-trial dispersion tables of the two line widths on the trial's
  /// board (length-independent; see BandEvaluator::w50_prop_), rewritten
  /// in place each trial because the substrate moves.
  std::vector<microstrip::Line::Propagation> w50_prop_, wbias_prop_;
  std::vector<circuit::NoiseResult> noise_buf_;
  device::NoiseTemperatures nt_adj_;  ///< ambient-scaled FET temperatures
};

/// Runs n yield trials; "pass" means all four goals and the stability
/// margin hold.  Trial i draws its perturbations from the counter-based
/// stream i of a generator forked once from rng (or Sobol point i), so
/// the FULL report is reproducible per seed and bit-identical for any
/// options.threads and options.shard, with either sampler.
YieldReport run_yield(const device::Phemt& device,
                      const AmplifierConfig& config,
                      const DesignVector& design, const DesignGoals& goals,
                      std::size_t n, numeric::Rng& rng,
                      const YieldOptions& options = {});

/// Back-compatible wrapper: pseudo-random sampler, default engine options.
YieldReport monte_carlo_yield(const device::Phemt& device,
                              const AmplifierConfig& config,
                              const DesignVector& design,
                              const DesignGoals& goals, std::size_t n,
                              numeric::Rng& rng,
                              ToleranceModel tolerances = {},
                              std::size_t threads = 1);

}  // namespace gnsslna::amplifier
