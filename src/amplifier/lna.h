// LNA circuit assembly and band evaluation.
//
// LnaDesign turns (device, config, design vector) into a circuit::Netlist
// with every physical effect the paper insists on: dispersive chip
// passives (Q/ESR/SRF), lossy dispersive microstrip lines, the bias-tee
// T-splitter parasitics, the drain/gate bias resistors with their thermal
// noise, and the Pospieszalski device noise — then evaluates S-parameters,
// noise figure, stability, and DC current over the GNSS band.
#pragma once

#include "amplifier/topology.h"
#include "circuit/analysis.h"
#include "circuit/batched.h"
#include "circuit/compiled.h"

namespace gnsslna::amplifier {

/// Aggregate band figures the optimizer and the benches consume.
struct BandReport {
  double nf_avg_db = 0.0;    ///< band-average noise figure
  double nf_max_db = 0.0;    ///< worst in-band noise figure
  double gt_min_db = 0.0;    ///< worst in-band transducer gain (50-ohm)
  double gt_avg_db = 0.0;
  double s11_worst_db = 0.0; ///< worst (largest) in-band |S11|
  double s22_worst_db = 0.0;
  double mu_min = 0.0;       ///< minimum Edwards-Sinsky mu over the
                             ///< stability grid (in-band + out-of-band)
  double id_a = 0.0;         ///< DC drain current
};

/// Handles to the elements of an LNA netlist that depend on the design
/// vector (or its derived bias network).  Everything else — decoupling,
/// bias line, tee parasitics, blocking caps — is fixed by the config, so a
/// compiled plan never needs to re-tabulate it between design points.
///
/// The yield engine additionally perturbs the SUBSTRATE (epsilon_r,
/// height), which reaches elements a design step never moves: the
/// high-impedance bias line and the tee-junction parasitics.  Their
/// handles are carried here too so a tolerance trial can re-tabulate them
/// in place; optimizer loops (fixed board) simply never touch them.
struct DesignBindings {
  circuit::ElementRef cin, lshunt, cmid, lsdeg, rfb, coutsh, rdrain;
  circuit::ElementRef tlin1, tlin2, tlout1, tlout2;
  circuit::ElementRef q1;
  // Substrate-dependent fixed elements (see above).  The tee handles are
  // only meaningful when `has_tee` (config.model_tee).
  circuit::ElementRef tlbias;
  circuit::ElementId ltee1, ltee2, ltee3, ctee;
  bool has_tee = false;
};

class LnaDesign {
 public:
  /// The config is resolved (w50 synthesized) on construction.
  LnaDesign(const device::Phemt& device, AmplifierConfig config,
            DesignVector design);

  /// Builds a fresh netlist (cheap; closures only).
  circuit::Netlist build_netlist() const;

  /// Like build_netlist(), also returning handles to the design-dependent
  /// elements so they can later be rebound in place.
  circuit::Netlist build_netlist(DesignBindings* bindings) const;

  /// Rebinds the design-dependent elements of a netlist previously built
  /// by build_netlist(&bindings) — possibly for a different design vector —
  /// to THIS design's values.  The rebound netlist is bit-identical to
  /// build_netlist() on this design; topology is untouched.  When
  /// `previous` is the design the netlist is currently bound to (same
  /// device and config), elements whose parameters are unchanged are
  /// skipped entirely, so a subsequent CompiledNetlist::sync() re-tabulates
  /// only what the design step actually moved.
  void rebind_netlist(circuit::Netlist& netlist, const DesignBindings& bindings,
                      const DesignVector* previous = nullptr) const;

  /// Two-port S-parameters at a frequency.
  rf::SParams s_params(double frequency_hz) const;

  /// Swept S-parameters.  Frequency points fan out across `threads`
  /// (0 = hardware_concurrency, 1 = serial); bit-identical for any count.
  rf::SweepData s_sweep(const std::vector<double>& frequencies_hz,
                        std::size_t threads = 1) const;

  /// Spot noise figure [dB].
  double noise_figure_db(double frequency_hz) const;

  /// Band evaluation over the given in-band grid; stability is also
  /// checked on an extended grid (0.5-3.5 GHz).  Per-frequency analyses
  /// fan out across `threads`; the report is reduced in grid order, so it
  /// is bit-identical for any thread count.
  BandReport evaluate(const std::vector<double>& band_hz,
                      std::size_t threads = 1) const;

  /// Reduces a band report from an already-synced compiled plan whose grid
  /// is `band_points` in-band frequencies followed by stability_grid().
  /// Shared by evaluate() and BandEvaluator; bit-identical to the legacy
  /// per-call path.
  BandReport evaluate_from_plan(circuit::CompiledNetlist& plan,
                                std::size_t band_points,
                                std::size_t threads = 1) const;

  /// Like evaluate_from_plan(), but over a frequency-batched plan: the
  /// grid is split into contiguous lane chunks (one EvalWorkspace each),
  /// every chunk factored as one blocked LU batch.  Chunk boundaries
  /// depend only on the thread count and per-lane results are independent
  /// of chunking, so the report is bit-identical to evaluate_from_plan()
  /// and to the legacy path at every thread count.
  BandReport evaluate_from_batched(const circuit::BatchedPlan& plan,
                                   std::size_t band_points,
                                   std::size_t threads = 1) const;

  /// Default 7-point evaluation grid across 1.1-1.7 GHz.
  static std::vector<double> default_band();

  /// Extended 0.5-3.5 GHz grid the mu stability check runs on.
  static std::vector<double> stability_grid();

  const DesignVector& design() const { return design_; }
  const AmplifierConfig& config() const { return config_; }
  const device::Phemt& device() const { return device_; }
  const BiasNetwork& bias() const { return bias_; }

 private:
  device::Phemt adjusted_device() const;

  device::Phemt device_;
  AmplifierConfig config_;
  DesignVector design_;
  BiasNetwork bias_;
};

/// Reusable band evaluator for optimizer loops: keeps one evaluation plan
/// alive across design points, re-tabulating only the elements the design
/// vector changes — fixed elements (and their dispersion curves) are
/// tabulated once for the whole run, and every frequency shares a single
/// LU factorization between the S-parameter and noise solves.  Reports
/// are bit-identical to LnaDesign::evaluate().
///
/// With config.use_batched_plan (the default) the evaluator runs on the
/// allocation-free circuit::BatchedPlan core: changed element values are
/// written straight into the plan's tables (no closures, no Netlist), and
/// after the first call the steady state performs ZERO heap allocations
/// (pinned by tests/test_alloc_free.cpp and the bench allocs_per_op
/// counter).  With use_batched_plan == false it falls back to the scalar
/// CompiledNetlist rebind/sync machinery.
///
/// NOT thread-safe: hold one instance per thread (see
/// objectives.cpp::ReportCache).
class BandEvaluator {
 public:
  /// Band defaults to LnaDesign::default_band() when empty.
  BandEvaluator(const device::Phemt& device, AmplifierConfig config,
                std::vector<double> band_hz = {});

  /// Evaluates one design point.  Throws like LnaDesign for infeasible
  /// designs (bias unreachable etc.); the evaluator stays usable.
  BandReport evaluate(const DesignVector& design);

  /// Element/noise tables refreshed by the last evaluate() (diagnostics
  /// and cache-invalidation tests).  Same counting on both paths: one per
  /// value table (stamp, two-port, or noise CSD) rewritten.
  std::size_t last_retabulated() const { return last_retabulated_; }

  /// Arena high-water mark of the persistent batched workspace [bytes]
  /// (0 on the scalar path); pinned by the zero-allocation test so silent
  /// workspace growth fails CI.
  std::size_t workspace_high_water() const {
    return workspace_.arena_high_water();
  }

 private:
  BandReport evaluate_compiled(const DesignVector& design);
  BandReport evaluate_batched(const DesignVector& design);
  void retabulate_batched(const DesignVector& design);
  BandReport batched_pass();

  device::Phemt device_;
  AmplifierConfig config_;
  std::vector<double> band_hz_;
  bool built_ = false;
  DesignVector last_;  ///< design the plan is currently bound to
  std::size_t last_retabulated_ = 0;

  // Scalar path (use_batched_plan == false): netlist closures rebound in
  // place, then CompiledNetlist::sync picks up the bumped revisions.
  circuit::Netlist netlist_;
  DesignBindings bindings_;
  circuit::CompiledNetlist plan_;

  // Batched direct path: values are written through the plan's table
  // views, so no netlist is retained — only the element handles.
  circuit::BatchedPlan bplan_;
  circuit::EvalWorkspace workspace_;
  /// Dispersion curve of a w50-wide line over the plan grid, cached at
  /// build time: propagation data depend on (substrate, width, f) only,
  /// so every design-vector line length reuses this table
  /// (abcd_from(propagation(f)) == abcd(f) bit-for-bit).
  std::vector<microstrip::Line::Propagation> w50_prop_;
  /// Per-band-lane noise results from the batched sweep; sized on first
  /// use and reused (steady-state resize is a no-op, so no allocations).
  std::vector<circuit::NoiseResult> noise_buf_;
  BiasNetwork bias_;                  ///< bias for `last_` (id_a, r_drain)
  device::NoiseTemperatures nt_adj_;  ///< ambient-scaled FET temperatures
  bool force_full_retab_ = false;  ///< a write threw mid-retabulation; the
                                   ///< tables may be mixed, rewrite all
};

}  // namespace gnsslna::amplifier
