// LNA circuit assembly and band evaluation.
//
// LnaDesign turns (device, config, design vector) into a circuit::Netlist
// with every physical effect the paper insists on: dispersive chip
// passives (Q/ESR/SRF), lossy dispersive microstrip lines, the bias-tee
// T-splitter parasitics, the drain/gate bias resistors with their thermal
// noise, and the Pospieszalski device noise — then evaluates S-parameters,
// noise figure, stability, and DC current over the GNSS band.
#pragma once

#include "amplifier/topology.h"
#include "circuit/analysis.h"

namespace gnsslna::amplifier {

/// Aggregate band figures the optimizer and the benches consume.
struct BandReport {
  double nf_avg_db = 0.0;    ///< band-average noise figure
  double nf_max_db = 0.0;    ///< worst in-band noise figure
  double gt_min_db = 0.0;    ///< worst in-band transducer gain (50-ohm)
  double gt_avg_db = 0.0;
  double s11_worst_db = 0.0; ///< worst (largest) in-band |S11|
  double s22_worst_db = 0.0;
  double mu_min = 0.0;       ///< minimum Edwards-Sinsky mu over the
                             ///< stability grid (in-band + out-of-band)
  double id_a = 0.0;         ///< DC drain current
};

class LnaDesign {
 public:
  /// The config is resolved (w50 synthesized) on construction.
  LnaDesign(const device::Phemt& device, AmplifierConfig config,
            DesignVector design);

  /// Builds a fresh netlist (cheap; closures only).
  circuit::Netlist build_netlist() const;

  /// Two-port S-parameters at a frequency.
  rf::SParams s_params(double frequency_hz) const;

  /// Swept S-parameters.  Frequency points fan out across `threads`
  /// (0 = hardware_concurrency, 1 = serial); bit-identical for any count.
  rf::SweepData s_sweep(const std::vector<double>& frequencies_hz,
                        std::size_t threads = 1) const;

  /// Spot noise figure [dB].
  double noise_figure_db(double frequency_hz) const;

  /// Band evaluation over the given in-band grid; stability is also
  /// checked on an extended grid (0.5-3.5 GHz).  Per-frequency analyses
  /// fan out across `threads`; the report is reduced in grid order, so it
  /// is bit-identical for any thread count.
  BandReport evaluate(const std::vector<double>& band_hz,
                      std::size_t threads = 1) const;

  /// Default 7-point evaluation grid across 1.1-1.7 GHz.
  static std::vector<double> default_band();

  const DesignVector& design() const { return design_; }
  const AmplifierConfig& config() const { return config_; }
  const device::Phemt& device() const { return device_; }
  const BiasNetwork& bias() const { return bias_; }

 private:
  device::Phemt device_;
  AmplifierConfig config_;
  DesignVector design_;
  BiasNetwork bias_;
};

}  // namespace gnsslna::amplifier
