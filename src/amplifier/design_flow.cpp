#include "amplifier/design_flow.h"

#include <cmath>
#include <stdexcept>

namespace gnsslna::amplifier {

namespace {
double round_to(double v, double quantum) {
  return std::round(v / quantum) * quantum;
}
}  // namespace

DesignVector snap_design(const DesignVector& d, passives::ESeries series) {
  DesignVector s = d;
  s.vgs = round_to(d.vgs, 0.01);
  s.vds = round_to(d.vds, 0.01);
  s.l_in_m = round_to(d.l_in_m, 0.1e-3);
  s.l_in2_m = round_to(d.l_in2_m, 0.1e-3);
  s.l_out_m = round_to(d.l_out_m, 0.1e-3);
  s.l_out2_m = round_to(d.l_out2_m, 0.1e-3);
  s.l_shunt_h = passives::snap(d.l_shunt_h, series);
  s.c_mid_f = passives::snap(d.c_mid_f, series);
  s.c_out_sh_f = passives::snap(d.c_out_sh_f, series);
  s.l_sdeg_h = passives::snap(d.l_sdeg_h, series);
  s.c_in_f = passives::snap(d.c_in_f, series);
  s.r_fb_ohm = passives::snap(d.r_fb_ohm, series);

  // Keep the snapped point inside the optimizer's box so it remains a
  // valid DesignVector.
  const optimize::Bounds box = DesignVector::bounds();
  return DesignVector::from_vector(box.clamp(s.to_vector()));
}

DesignOutcome run_design_flow(const device::Phemt& device,
                              AmplifierConfig config, numeric::Rng& rng,
                              DesignFlowOptions options) {
  config.resolve();
  const std::vector<double> band = options.band_hz.empty()
                                       ? LnaDesign::default_band()
                                       : options.band_hz;

  if (options.evaluator && options.optimizer.threads != 1) {
    throw std::invalid_argument(
        "run_design_flow: a shared evaluator is serial-only "
        "(optimizer.threads must be 1)");
  }
  optimize::GoalProblem problem =
      make_goal_problem(device, config, options.goals, band, options.evaluator);

  DesignOutcome out;
  out.optimization =
      optimize::improved_goal_attainment(problem, rng, options.optimizer);
  out.continuous = DesignVector::from_vector(out.optimization.x);
  // The verification reports run through the shared evaluator when one is
  // leased; evaluator and per-design LnaDesign reports are bit-identical
  // (the plan-equivalence contract pinned by tests/test_batched.cpp).
  out.continuous_report =
      options.evaluator
          ? options.evaluator->evaluate(out.continuous)
          : LnaDesign(device, config, out.continuous).evaluate(band);

  out.snapped = snap_design(out.continuous, options.series);
  const LnaDesign snapped_lna(device, config, out.snapped);
  out.snapped_report = options.evaluator
                           ? options.evaluator->evaluate(out.snapped)
                           : snapped_lna.evaluate(band);
  out.bias = snapped_lna.bias();
  return out;
}

}  // namespace gnsslna::amplifier
