// Lab-style characterization of a finished amplifier design: source-pull
// noise-parameter extraction and per-element sensitivity analysis.
#pragma once

#include "amplifier/lna.h"
#include "rf/noise.h"

namespace gnsslna::amplifier {

/// Extracts the four IEEE noise parameters of the ASSEMBLED amplifier at
/// one frequency via simulated source-pull: the input termination is swept
/// over a ring of source states (|gamma| = ring_radius plus the matched
/// point) and Lane's linearized fit recovers (Fmin, Rn, Gamma_opt).
/// This mirrors exactly what a noise-parameter test set does to the
/// physical prototype.
rf::NoiseParams amplifier_noise_parameters(const LnaDesign& lna,
                                           double frequency_hz,
                                           std::size_t n_states = 9,
                                           double ring_radius = 0.4);

/// Relative sensitivity of the band figures to each design element:
/// d(metric) for a +1% change of element i (bias voltages: +10 mV).
struct SensitivityRow {
  std::string element;
  double d_nf_db = 0.0;    ///< change in band-average NF [dB]
  double d_gt_db = 0.0;    ///< change in min gain [dB]
  double d_s11_db = 0.0;   ///< change in worst S11 [dB]
};

/// Central-difference sensitivities around a design point.  The rows come
/// back in DesignVector order; use them to decide which elements need
/// tight-tolerance parts.
std::vector<SensitivityRow> sensitivity_analysis(
    const device::Phemt& device, const AmplifierConfig& config,
    const DesignVector& design);

}  // namespace gnsslna::amplifier
