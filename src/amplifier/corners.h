// Environmental corner analysis of a finished design.
//
// An antenna-mounted preamplifier lives outdoors: -40C winter mast to
// +85C summer roof, with a supply that sags along the cable.  This module
// re-evaluates a design across (temperature, Vdd) corners — the check a
// design review demands before the paper's prototype ships.
//
// Thermal model (first order, documented): passive thermal noise and the
// Pospieszalski noise temperatures scale linearly with the ambient; the
// device I-V itself is kept at its extraction temperature (I-V
// temperature coefficients are not part of the published models we
// reproduce — the dominant NF/gain shifts at L-band come from the noise
// temperatures and the bias point, which we do capture).
#pragma once

#include "amplifier/objectives.h"

namespace gnsslna::amplifier {

struct Corner {
  std::string name;
  double t_ambient_k = 290.0;
  double vdd = 5.0;
};

/// The standard industrial corner set at the given nominal rail.
std::vector<Corner> standard_corners(double vdd_nominal = 5.0);

struct CornerRow {
  Corner corner;
  BandReport report;
  bool meets_goals = false;
};

/// Evaluates a design at every corner and checks the goals.  Corners are
/// independent, so they fan out across `threads` (0 = hardware_concurrency,
/// 1 = serial); the rows come back in corner order and are bit-identical
/// for any thread count.
std::vector<CornerRow> corner_analysis(const device::Phemt& device,
                                       const AmplifierConfig& config,
                                       const DesignVector& design,
                                       const DesignGoals& goals,
                                       const std::vector<Corner>& corners,
                                       std::size_t threads = 1);

}  // namespace gnsslna::amplifier
